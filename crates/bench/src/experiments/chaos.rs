//! The chaos & elasticity campaign (DESIGN.md §12): run each app's IC
//! and PIC sides under a deterministic fault scenario, compare against
//! the clean run, and report recovery cost plus the time-to-quality
//! penalty. The resulting cells feed the `quality_under_failure` section
//! of `BENCH_pic.json` and the chaos CSV CI artifact.
//!
//! Fault times are derived from the clean run's own simulated duration
//! (crash at 0.3 T, degradation over [0.2 T, 0.6 T], wave at 0.4 T), so
//! every scenario lands mid-run at any workload scale. Chaos never
//! touches host computation: crash / degrade / preemption cells must
//! reproduce the clean run's answer exactly, and only `elastic-resize`
//! (which changes the partitioning) may move the converged model.

use super::common::cost::AppCost;
use super::ExperimentCtx;
use pic_core::prelude::*;
use pic_mapreduce::{Dataset, Engine};
use pic_simnet::chaos::FaultPlan;
use pic_simnet::report::fmt_f64;
use pic_simnet::trace::check;
use pic_simnet::{ClusterSpec, Monitor, MonitorConfig};

/// The fault scenarios of the campaign matrix, in report order.
pub const SCENARIOS: [&str; 4] = [
    "node-crash",
    "rack-degrade",
    "preemption-wave",
    "elastic-resize",
];

/// The apps the campaign runs (a cheap, representative subset of the
/// report apps: centroid model, dense vector model, grid model).
pub const CHAOS_APPS: [&str; 3] = ["kmeans", "linsolve", "smoothing"];

/// Seed every campaign plan is derived from (preemption victims etc.).
const CAMPAIGN_SEED: u64 = 0xC1A0;

/// One (app, scenario, driver) cell of the campaign matrix.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Application name.
    pub app: &'static str,
    /// Fault scenario (one of [`SCENARIOS`]).
    pub scenario: &'static str,
    /// `"ic"` or `"pic"`.
    pub driver: &'static str,
    /// Clean-run simulated seconds.
    pub clean_s: f64,
    /// Faulty-run simulated seconds.
    pub faulty_s: f64,
    /// Extra simulated seconds the faults cost (`faulty - clean`).
    pub recovery_s: f64,
    /// Bytes the ledger charged to the recovery class (killed-attempt
    /// refetches, DFS re-replication, rebalance passes).
    pub recovery_bytes: u64,
    /// Fault events the injector actually fired during the run.
    pub injected_events: usize,
    /// How much later the faulty run reaches the clean run's final
    /// quality (with 5% slack), in simulated seconds.
    pub tt_quality_delta_s: f64,
    /// True when the faulty run converged to exactly the clean answer
    /// (the crash/degrade/preemption invariant; resize may legitimately
    /// differ).
    pub exact_result: bool,
    /// Incidents the online monitor (default rule catalog) opened on
    /// the faulty run — every cell whose plan actually fired must open
    /// at least one.
    pub incidents: u64,
    /// Incidents on the matching clean run — must be exactly zero (the
    /// monitor is quiet on healthy runs).
    pub clean_incidents: u64,
}

/// Build the scenario's fault plan from the clean run's duration
/// `t_clean` on `spec`. Unknown names are an error listing the valid
/// set.
pub fn plan_for(
    scenario: &str,
    t_clean: f64,
    spec: &ClusterSpec,
    partitions: usize,
) -> Result<FaultPlan, String> {
    let plan = FaultPlan::new(CAMPAIGN_SEED);
    match scenario {
        "node-crash" => Ok(plan.node_crash(1 % spec.nodes, 0.3 * t_clean)),
        "rack-degrade" => Ok(plan.degrade_links(4.0, 0.2 * t_clean, 0.6 * t_clean)),
        "preemption-wave" => {
            Ok(plan.preemption_wave(2usize.min(spec.nodes - 1).max(1), 0.4 * t_clean))
        }
        "elastic-resize" => Ok(plan.elastic_resize(1, partitions, (spec.nodes * 2 / 3).max(1))),
        other => Err(format!("unknown scenario '{other}'; known: {SCENARIOS:?}")),
    }
}

/// Canonical `'static` name for a validated scenario string.
fn static_name(scenario: &str) -> &'static str {
    SCENARIOS
        .iter()
        .find(|s| **s == scenario)
        .copied()
        .unwrap_or_else(|| panic!("scenario '{scenario}' not validated"))
}

/// First trajectory time at which `target` quality is reached.
fn time_to_quality(traj: &[TrajectoryPoint], target: f64, fallback: f64) -> f64 {
    traj.iter()
        .find(|p| p.error <= target)
        .map_or(fallback, |p| p.t_s)
}

/// Final trajectory error (every campaign app defines one).
fn final_error(traj: &[TrajectoryPoint], who: &str) -> f64 {
    traj.last()
        .unwrap_or_else(|| panic!("{who}: empty trajectory"))
        .error
}

/// One driver's run, clean or faulty, on its own fresh engine. The cell
/// arithmetic needs clean and faulty runs to be *identical setups* —
/// same DFS path, same split count, same options — so that
/// `faulty - clean` isolates exactly what the fault plan cost and a
/// never-firing plan yields a recovery of exactly zero.
struct DriverRun<M> {
    total_s: f64,
    trajectory: Vec<TrajectoryPoint>,
    model: M,
    recovery_bytes: u64,
    injected_events: usize,
    incidents: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_driver<A: PicApp + QualityProbe>(
    who: &str,
    driver: &'static str,
    spec: &ClusterSpec,
    app: &A,
    records: &[A::Record],
    init: &A::Model,
    splits: usize,
    partitions: usize,
    cost: &AppCost,
    plan: Option<&FaultPlan>,
) -> Result<DriverRun<A::Model>, String>
where
    A::Record: Clone,
    A::Model: Clone,
{
    let engine = Engine::new(spec.clone());
    let data = Dataset::create(&engine, "/chaos/input", records.to_vec(), splits);
    engine.reset();
    if let Some(p) = plan {
        engine
            .arm_chaos(p)
            .map_err(|es| format!("{who}: invalid plan: {es:?}"))?;
    }
    let (total_s, trajectory, model) = if driver == "ic" {
        let r = run_ic(
            &engine,
            app,
            &data,
            init.clone(),
            &IcOptions {
                timing: cost.timing.clone(),
                ..Default::default()
            },
        );
        (r.total_time_s, r.trajectory, r.final_model)
    } else {
        let r = run_pic(
            &engine,
            app,
            &data,
            init.clone(),
            &PicOptions {
                partitions,
                timing: cost.timing.clone(),
                local_secs_per_record: Some(cost.local_secs),
                ..Default::default()
            },
        );
        (r.total_time_s, r.trajectory, r.final_model)
    };
    // Every trace, clean or faulty, must satisfy the full structural
    // suite, chaos checks included, and reconcile byte-exactly.
    let trace = engine.trace();
    let traffic = engine.traffic();
    check::validate(&trace, &traffic).map_err(|es| format!("{who}: {es:?}"))?;
    // Replay through the online monitor with the default rule catalog:
    // the incident count couples each cell to the alerting layer.
    let monitor = Monitor::replay(MonitorConfig::new(spec.clone()), &trace)
        .map_err(|e| format!("{who}: {e}"))?;
    Ok(DriverRun {
        total_s,
        trajectory,
        model,
        recovery_bytes: traffic.recovery_total(),
        injected_events: engine.chaos().injected_events(),
        incidents: monitor.incidents.len() as u64,
    })
}

/// Run one app through both drivers under `scenario`, returning its two
/// matrix cells. The clean per-driver baselines are taken as given so
/// one pair of clean runs serves every scenario.
#[allow(clippy::too_many_arguments)]
fn cells_for<A: PicApp + QualityProbe>(
    app_name: &'static str,
    scenario: &'static str,
    spec: &ClusterSpec,
    app: &A,
    records: &[A::Record],
    init: &A::Model,
    splits: usize,
    partitions: usize,
    cost: &AppCost,
    clean: &[(&'static str, DriverRun<A::Model>)],
) -> Result<Vec<ChaosCell>, String>
where
    A::Record: Clone,
    A::Model: Clone + PartialEq,
{
    let mut cells = Vec::new();
    for &(driver, ref clean_run) in clean {
        let plan = plan_for(scenario, clean_run.total_s, spec, partitions)?;
        let faulty = run_driver(
            &format!("{app_name}/{scenario}/{driver}"),
            driver,
            spec,
            app,
            records,
            init,
            splits,
            partitions,
            cost,
            Some(&plan),
        )?;

        let clean_final = final_error(&clean_run.trajectory, app_name);
        let target = clean_final * 1.05 + 1e-12;
        let tt_clean = time_to_quality(&clean_run.trajectory, target, clean_run.total_s);
        let tt_faulty = time_to_quality(&faulty.trajectory, target, faulty.total_s);

        cells.push(ChaosCell {
            app: app_name,
            scenario,
            driver,
            clean_s: clean_run.total_s,
            faulty_s: faulty.total_s,
            recovery_s: faulty.total_s - clean_run.total_s,
            recovery_bytes: faulty.recovery_bytes,
            injected_events: faulty.injected_events,
            tt_quality_delta_s: tt_faulty - tt_clean,
            exact_result: faulty.model == clean_run.model,
            incidents: faulty.incidents,
            clean_incidents: clean_run.incidents,
        });
    }
    Ok(cells)
}

/// Per-driver clean baselines: one [`DriverRun`] per driver label.
type CleanRuns<M> = Vec<(&'static str, DriverRun<M>)>;

/// The two clean per-driver baselines for one app (shared by all of the
/// app's scenarios).
#[allow(clippy::too_many_arguments)]
fn clean_runs<A: PicApp + QualityProbe>(
    app_name: &'static str,
    spec: &ClusterSpec,
    app: &A,
    records: &[A::Record],
    init: &A::Model,
    splits: usize,
    partitions: usize,
    cost: &AppCost,
) -> Result<CleanRuns<A::Model>, String>
where
    A::Record: Clone,
    A::Model: Clone,
{
    ["ic", "pic"]
        .into_iter()
        .map(|driver| {
            run_driver(
                &format!("{app_name}/clean/{driver}"),
                driver,
                spec,
                app,
                records,
                init,
                splits,
                partitions,
                cost,
                None,
            )
            .map(|r| (driver, r))
        })
        .collect()
}

/// Run the campaign matrix: every app in [`CHAOS_APPS`] × every
/// requested scenario × both drivers. Scenario names are validated up
/// front so an unknown name fails before any run.
pub fn campaign(ctx: &ExperimentCtx, scenarios: &[&str]) -> Result<Vec<ChaosCell>, String> {
    for s in scenarios {
        if !SCENARIOS.contains(s) {
            return Err(format!("unknown scenario '{s}'; known: {SCENARIOS:?}"));
        }
    }
    let mut cells = Vec::new();

    // K-means: small mixture, centroid model.
    {
        use super::common::cost;
        use pic_apps::kmeans::{gaussian_mixture, init_random_centroids, Centroids, KMeansApp};
        let spec = ClusterSpec::small();
        let app = KMeansApp::new(4, 2, 1.0);
        let records = gaussian_mixture(ctx.n(2_000, 400), 4, 2, 1000.0, 40.0, 3);
        let init = Centroids::new(init_random_centroids(4, 2, 1000.0, 7));
        // Error metric: relative SSE excess on a subsample vs the
        // sequential solution (same construction as fig2).
        let sample: Vec<_> = records.iter().step_by(2).cloned().collect();
        let reference = app.solve_reference(&sample, &init, 300);
        let app = app.with_eval_sample(sample, &reference);
        let (splits, partitions) = (6, 4);
        let c = cost::kmeans();
        let clean = clean_runs(
            "kmeans", &spec, &app, &records, &init, splits, partitions, &c,
        )?;
        for &scenario in scenarios {
            cells.extend(cells_for(
                "kmeans",
                static_name(scenario),
                &spec,
                &app,
                &records,
                &init,
                splits,
                partitions,
                &c,
                &clean,
            )?);
        }
    }

    // Linear solver: dense vector model, paper-exact size.
    {
        use super::common::cost;
        use pic_apps::linsolve::{diag_dominant_system, LinSolveApp};
        let spec = ClusterSpec::small();
        let n = 100;
        let sys = diag_dominant_system(n, 0.05, 11);
        let app = LinSolveApp::new(n, 5, 1e-8)
            .with_exact(sys.exact.clone())
            .with_rows(sys.rows.clone());
        let init = vec![0.0; n];
        let (splits, partitions) = (5, 5);
        let c = cost::linsolve();
        let clean = clean_runs(
            "linsolve", &spec, &app, &sys.rows, &init, splits, partitions, &c,
        )?;
        for &scenario in scenarios {
            cells.extend(cells_for(
                "linsolve",
                static_name(scenario),
                &spec,
                &app,
                &sys.rows,
                &init,
                splits,
                partitions,
                &c,
                &clean,
            )?);
        }
    }

    // Smoothing: grid model.
    {
        use super::common::cost;
        use pic_apps::smoothing::{noisy_image, SmoothingApp};
        let spec = ClusterSpec::small();
        let side = 64;
        let f = noisy_image(side, side, 0.08, 5);
        let app = SmoothingApp::new(side, side, 8, 1e-6).with_observed(f.clone());
        let records = f.rows();
        let (splits, partitions) = (8, 8);
        let c = cost::smoothing(side);
        let clean = clean_runs(
            "smoothing",
            &spec,
            &app,
            &records,
            &f,
            splits,
            partitions,
            &c,
        )?;
        for &scenario in scenarios {
            cells.extend(cells_for(
                "smoothing",
                static_name(scenario),
                &spec,
                &app,
                &records,
                &f,
                splits,
                partitions,
                &c,
                &clean,
            )?);
        }
    }

    Ok(cells)
}

/// The campaign cells as JSON array items (for `bench_json`'s
/// `quality_under_failure` section), indented by `indent` spaces.
pub fn cells_json(cells: &[ChaosCell], indent: usize) -> String {
    let pad = " ".repeat(indent);
    let mut out = String::new();
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!("{pad}{{\n"));
        out.push_str(&format!("{pad}  \"app\": \"{}\",\n", c.app));
        out.push_str(&format!("{pad}  \"scenario\": \"{}\",\n", c.scenario));
        out.push_str(&format!("{pad}  \"driver\": \"{}\",\n", c.driver));
        out.push_str(&format!("{pad}  \"clean_s\": {},\n", fmt_f64(c.clean_s)));
        out.push_str(&format!("{pad}  \"faulty_s\": {},\n", fmt_f64(c.faulty_s)));
        out.push_str(&format!(
            "{pad}  \"recovery_s\": {},\n",
            fmt_f64(c.recovery_s)
        ));
        out.push_str(&format!(
            "{pad}  \"recovery_bytes\": {},\n",
            c.recovery_bytes
        ));
        out.push_str(&format!(
            "{pad}  \"injected_events\": {},\n",
            c.injected_events
        ));
        out.push_str(&format!(
            "{pad}  \"tt_quality_delta_s\": {},\n",
            fmt_f64(c.tt_quality_delta_s)
        ));
        out.push_str(&format!("{pad}  \"incidents\": {},\n", c.incidents));
        out.push_str(&format!(
            "{pad}  \"clean_incidents\": {},\n",
            c.clean_incidents
        ));
        out.push_str(&format!("{pad}  \"exact_result\": {}\n", c.exact_result));
        out.push_str(&format!(
            "{pad}}}{}\n",
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out
}

/// CSV header for [`chaos_csv`].
pub fn csv_header() -> &'static str {
    "app,scenario,driver,clean_s,faulty_s,recovery_s,recovery_bytes,injected_events,\
     tt_quality_delta_s,incidents,clean_incidents,exact_result"
}

/// The campaign cells as one CSV document (the CI artifact).
pub fn chaos_csv(cells: &[ChaosCell]) -> String {
    let mut out = String::from(csv_header());
    out.push('\n');
    for c in cells {
        out.push_str(&crate::table::csv_row([
            c.app.to_string(),
            c.scenario.to_string(),
            c.driver.to_string(),
            fmt_f64(c.clean_s),
            fmt_f64(c.faulty_s),
            fmt_f64(c.recovery_s),
            c.recovery_bytes.to_string(),
            c.injected_events.to_string(),
            fmt_f64(c.tt_quality_delta_s),
            c.incidents.to_string(),
            c.clean_incidents.to_string(),
            c.exact_result.to_string(),
        ]));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_scenario_names_the_valid_set() {
        let err = campaign(&ExperimentCtx { scale: 0.01 }, &["quake"]).unwrap_err();
        assert!(err.contains("unknown scenario 'quake'"), "{err}");
        for s in SCENARIOS {
            assert!(err.contains(s), "error must name {s}: {err}");
        }
        let err = plan_for("quake", 10.0, &ClusterSpec::small(), 4).unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
    }

    #[test]
    fn node_crash_cells_keep_exact_results_and_charge_recovery() {
        let cells = campaign(&ExperimentCtx { scale: 0.01 }, &["node-crash"]).unwrap();
        assert_eq!(cells.len(), CHAOS_APPS.len() * 2);
        for c in &cells {
            assert_eq!(c.scenario, "node-crash");
            assert!(
                c.exact_result,
                "{}/{}: a crash must not change the answer",
                c.app, c.driver
            );
            assert!(
                c.injected_events >= 1,
                "{}/{}: crash never fired",
                c.app,
                c.driver
            );
        }
        // At least one driver side pays visible recovery.
        assert!(cells.iter().any(|c| c.recovery_bytes > 0));
        assert!(cells.iter().any(|c| c.recovery_s > 0.0));
    }

    /// The chaos ↔ monitor coupling, pinned per scenario: every cell
    /// whose fault plan actually fired opens at least one incident,
    /// every scenario has at least one alerting cell, and the matching
    /// clean runs open exactly zero — the monitor is quiet on healthy
    /// runs and loud on every injected fault.
    #[test]
    fn every_fired_scenario_alerts_and_clean_runs_stay_quiet() {
        let cells = campaign(&ExperimentCtx { scale: 0.01 }, &SCENARIOS).unwrap();
        assert_eq!(cells.len(), CHAOS_APPS.len() * SCENARIOS.len() * 2);
        for c in &cells {
            assert_eq!(
                c.clean_incidents, 0,
                "{}/{}/{}: clean run must open no incidents",
                c.app, c.scenario, c.driver
            );
            if c.injected_events > 0 {
                assert!(
                    c.incidents >= 1,
                    "{}/{}/{}: {} faults fired but no incident opened",
                    c.app,
                    c.scenario,
                    c.driver,
                    c.injected_events
                );
            }
        }
        for scenario in SCENARIOS {
            assert!(
                cells
                    .iter()
                    .any(|c| c.scenario == scenario && c.incidents >= 1),
                "scenario {scenario} opened no incidents anywhere"
            );
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let ctx = ExperimentCtx { scale: 0.01 };
        let a = chaos_csv(&campaign(&ctx, &["rack-degrade"]).unwrap());
        let b = chaos_csv(&campaign(&ctx, &["rack-degrade"]).unwrap());
        assert_eq!(a, b);
    }
}
