//! Figures 9–11: PIC-vs-IC speedups on the small, medium and large
//! clusters.

use super::common::{compare, cost, Comparison};
use super::ExperimentCtx;
use crate::table::{fmt_secs, fmt_x, Table};
use pic_apps::kmeans::{gaussian_mixture, init_random_centroids, Centroids, KMeansApp};
use pic_apps::linsolve::{diag_dominant_system, LinSolveApp};
use pic_apps::neuralnet::{ocr_like_split, Mlp, NeuralNetApp};
use pic_apps::pagerank::{block_local_graph, PageRankApp, PartitionMode};
use pic_apps::smoothing::{noisy_image, SmoothingApp};
use pic_simnet::ClusterSpec;

/// First simulated time at which a trajectory reaches `target` error, if
/// it ever does. Used by analyses comparing time-to-equal-quality instead
/// of time-to-budget (e.g. Fig. 12 post-processing).
pub fn time_to_error(traj: &[pic_core::report::TrajectoryPoint], target: f64) -> Option<f64> {
    traj.iter().find(|p| p.error <= target).map(|p| p.t_s)
}

#[cfg(test)]
mod time_to_error_tests {
    use super::time_to_error;
    use pic_core::report::TrajectoryPoint;

    #[test]
    fn finds_first_crossing() {
        let traj = vec![
            TrajectoryPoint {
                t_s: 0.0,
                error: 1.0,
            },
            TrajectoryPoint {
                t_s: 5.0,
                error: 0.4,
            },
            TrajectoryPoint {
                t_s: 10.0,
                error: 0.1,
            },
        ];
        assert_eq!(time_to_error(&traj, 0.5), Some(5.0));
        assert_eq!(time_to_error(&traj, 0.05), None);
    }
}

fn speedup_row<M>(t: &mut Table, name: &str, cmp: &Comparison<M>) {
    t.row([
        name,
        &fmt_secs(cmp.ic.total_time_s),
        &fmt_secs(cmp.pic.total_time_s),
        &fmt_x(cmp.speedup()),
    ]);
}

/// K-means comparison on an arbitrary cluster (shared by Figs. 9 and 10).
/// `k` is the cluster count (the paper uses 100; shape tests shrink it so
/// partitions keep enough points per cluster at tiny scales).
pub fn kmeans_cmp(
    spec: &ClusterSpec,
    n: usize,
    partitions: usize,
    k: usize,
) -> Comparison<Centroids> {
    let dim = 3;
    // Threshold and overlap chosen to sit in the paper's operating
    // regime: a 0.1%-of-extent displacement threshold (coarser than the
    // per-point-flip granularity, so convergence is bulk-driven, not a
    // zero-assignment-flip cascade) and moderately overlapping clusters
    // (well-separated mixtures converge in a handful of Lloyd steps at
    // this scale, which would understate the baseline).
    let app = KMeansApp::new(k, dim, 1.0);
    let pts = gaussian_mixture(n, k, dim, 1000.0, 40.0, 21);
    let init = Centroids::new(init_random_centroids(k, dim, 1000.0, 5));
    compare(
        spec,
        &app,
        pts,
        init,
        partitions * 2,
        partitions,
        cost::kmeans(),
    )
}

/// PageRank comparison (Fig. 9; paper: Wikipedia, 1.8M documents, 18
/// random partitions).
pub fn pagerank_cmp(
    spec: &ClusterSpec,
    n: usize,
    partitions: usize,
) -> Comparison<pic_apps::pagerank::PrModel> {
    let g = block_local_graph(n, partitions, 2, 8, 0.9, 17);
    let app = PageRankApp::new(g.clone(), partitions, PartitionMode::Random, 5);
    // Error metric: mean |Δrank| against a deep sequential power
    // iteration (5x the IC budget, so the reference is near-converged).
    let reference = app.solve_reference(50);
    let app = app.with_reference(reference);
    let init = app.initial_model();
    compare(
        spec,
        &app,
        g.records(),
        init,
        partitions * 2,
        partitions,
        cost::pagerank(),
    )
}

/// Linear-solver comparison (Fig. 9; paper: 100 variables, weakly
/// diagonally dominant).
pub fn linsolve_cmp(spec: &ClusterSpec, n: usize, partitions: usize) -> Comparison<Vec<f64>> {
    let sys = diag_dominant_system(n, 0.05, 29);
    let app = LinSolveApp::new(n, partitions, 1e-8)
        .with_exact(sys.exact.clone())
        .with_rows(sys.rows.clone());
    compare(
        spec,
        &app,
        sys.rows,
        vec![0.0; n],
        partitions,
        partitions,
        cost::linsolve(),
    )
}

/// Neural-net comparison (Fig. 10; paper: ~210k OCR vectors).
pub fn neuralnet_cmp(spec: &ClusterSpec, n: usize, partitions: usize) -> Comparison<Mlp> {
    let (train, valid) = ocr_like_split(n, n / 10, 10, 64, 0.2, 41);
    let mut app = NeuralNetApp::new(valid);
    app.max_iterations = 60;
    let init = Mlp::random(64, 32, 10, 13);
    compare(
        spec,
        &app,
        train,
        init,
        partitions * 2,
        partitions,
        cost::neuralnet(),
    )
}

/// Image-smoothing comparison (Figs. 10 and 11; paper: 40-megapixel
/// image).
pub fn smoothing_cmp(
    spec: &ClusterSpec,
    side: usize,
    partitions: usize,
) -> Comparison<pic_apps::smoothing::Image> {
    let f = noisy_image(side, side, 0.08, 3);
    // Tight threshold: the paper sized this workload to run for ~1 h,
    // i.e. deep into convergence, which is where PIC's cheap best-effort
    // rounds dominate the many remaining full sweeps.
    // The observed image enables the reference-free sweep-residual error
    // metric (solving to a golden image at 40 Mpixel would dwarf the run).
    let app = SmoothingApp::new(side, side, partitions, 1e-7).with_observed(f.clone());
    compare(
        spec,
        &app,
        f.rows(),
        f.clone(),
        partitions,
        partitions,
        cost::smoothing(side),
    )
}

/// Figure 9: small (6-node) cluster — K-means, PageRank, linear solver.
pub fn fig9(ctx: &ExperimentCtx) -> String {
    let spec = ClusterSpec::small();
    let km = kmeans_cmp(&spec, ctx.n(200_000, 4_000), 24, 100);
    let pr = pagerank_cmp(&spec, ctx.n(20_000, 1_000), 18);
    let ls = linsolve_cmp(&spec, 100, 5); // the paper's exact size

    let mut t = Table::new(["application", "IC time", "PIC time", "speedup"]);
    speedup_row(&mut t, "k-means", &km);
    speedup_row(&mut t, "pagerank", &pr);
    speedup_row(&mut t, "linear solver", &ls);

    format!(
        "Figure 9 — speedups on the small (6-node) cluster\n\n{}\n\
         paper expectation: 2.5x–4x across all three applications.\n",
        t.render()
    )
}

/// Figure 10: medium (64-node) cluster — K-means, neural net, smoothing.
pub fn fig10(ctx: &ExperimentCtx) -> String {
    let spec = ClusterSpec::medium();
    let km = kmeans_cmp(&spec, ctx.n(400_000, 4_000), 64, 100);
    let nn = neuralnet_cmp(&spec, ctx.n(20_000, 500), 64);
    let sm = smoothing_cmp(&spec, (1024.0 * ctx.scale.sqrt()).max(64.0) as usize, 64);

    let mut t = Table::new(["application", "IC time", "PIC time", "speedup"]);
    speedup_row(&mut t, "k-means", &km);
    speedup_row(&mut t, "neural network", &nn);
    speedup_row(&mut t, "image smoothing", &sm);

    let nn_ic_err = nn.ic.trajectory.last().map(|p| p.error).unwrap_or(f64::NAN);
    let nn_pic_err = nn
        .pic
        .trajectory
        .last()
        .map(|p| p.error)
        .unwrap_or(f64::NAN);
    format!(
        "Figure 10 — speedups on the medium (64-node) cluster\n\n{}\n\
         (neural-net budgets: IC trains 60 epochs; PIC fine-tunes 10 after the \
         best-effort phase. Final validation error: {nn_ic_err:.3} IC vs \
         {nn_pic_err:.3} PIC — equal-or-better quality in the smaller budget.)\n\
         paper expectation: 2.5x–4x across all three applications.\n",
        t.render()
    )
}

/// Figure 11: strong scaling of the smoothing speedup, 64→256 nodes.
pub fn fig11(ctx: &ExperimentCtx) -> String {
    let side = (1024.0 * ctx.scale.sqrt()).max(64.0) as usize;
    let mut t = Table::new(["nodes", "IC time", "PIC time", "speedup"]);
    for nodes in [64usize, 128, 192, 256] {
        let spec = ClusterSpec::large(nodes);
        // Fixed dataset (strong scaling); one strip per node.
        let cmp = smoothing_cmp(&spec, side, nodes.min(side / 2));
        speedup_row(&mut t, &nodes.to_string(), &cmp);
    }
    format!(
        "Figure 11 — strong scaling of the PIC speedup (image smoothing, \
         {side}x{side} fixed dataset; paper used 40 Mpixel)\n\n{}\n\
         paper expectation: speedup maintained from 64 to 256 nodes \
         (PIC does not hurt Hadoop's scalability).\n",
        t.render()
    )
}

/// Weak scaling: the paper grows the K-means dataset when moving from the
/// small to the medium cluster "to ensure that there is enough work to
/// utilize the whole cluster fully. These results demonstrate weak
/// scalability of the PIC library" (§V.B). Hold work-per-node constant
/// and check the speedup holds.
pub fn weak_scaling(ctx: &ExperimentCtx) -> String {
    let per_node = ctx.n(24_000, 1_000);
    let mut t = Table::new(["cluster", "points", "IC time", "PIC time", "speedup"]);
    for (name, spec, partitions) in [
        ("small (6)", ClusterSpec::small(), 24),
        ("medium (64)", ClusterSpec::medium(), 64),
    ] {
        let n = per_node * spec.nodes;
        let cmp = kmeans_cmp(&spec, n, partitions, 100);
        t.row([
            name.to_string(),
            n.to_string(),
            fmt_secs(cmp.ic.total_time_s),
            fmt_secs(cmp.pic.total_time_s),
            fmt_x(cmp.speedup()),
        ]);
    }
    format!(
        "Weak scaling — K-means with work per node held constant \
         ({per_node} points/node)\n\n{}\n\
         paper expectation: the PIC speedup holds as the cluster and dataset \
         grow together (§V.B's weak-scalability observation).\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_small_scale_speedups_exceed_one() {
        // K-means speedup is covered at full scale by the workspace
        // end-to-end suite (its shape needs partition statistics a quick
        // unit test cannot afford); PageRank and the linear solver are
        // stable at small sizes.
        let spec = ClusterSpec::small();
        let pr = pagerank_cmp(&spec, 2_000, 18);
        assert!(pr.speedup() > 1.2, "pagerank speedup {}", pr.speedup());
        let ls = linsolve_cmp(&spec, 100, 5);
        assert!(ls.speedup() > 1.5, "linsolve speedup {}", ls.speedup());
    }

    #[test]
    fn fig11_speedup_is_maintained_at_scale() {
        let side = 64;
        let s64 = smoothing_cmp(&ClusterSpec::large(64), side, 16).speedup();
        let s256 = smoothing_cmp(&ClusterSpec::large(256), side, 16).speedup();
        assert!(s64 > 1.2, "64-node speedup {s64}");
        assert!(s256 > 0.6 * s64, "scaling collapse: {s64} -> {s256}");
    }
}
