//! Ablations of PIC's design choices (DESIGN.md §5). Not figures from the
//! paper, but the knobs its §III discusses qualitatively, measured.

use super::common::{compare, cost};
use super::ExperimentCtx;
use crate::table::{fmt_bytes, fmt_secs, fmt_x, Table};
use pic_apps::kmeans::{
    gaussian_mixture, init_random_centroids, Centroids, KMeansApp, MergeStrategy,
};
use pic_apps::pagerank::{block_local_graph, PageRankApp, PartitionMode};
use pic_simnet::ClusterSpec;

/// Partition-count sweep (paper §III.B: "more sub-problems of smaller
/// size can increase the number of best-effort iterations").
pub fn partition_count(ctx: &ExperimentCtx) -> String {
    let n = ctx.n(50_000, 2_000);
    let k = 100;
    let spec = ClusterSpec::small();
    let pts = gaussian_mixture(n, k, 3, 1000.0, 8.0, 61);
    let init = Centroids::new(init_random_centroids(k, 3, 1000.0, 13));

    let mut t = Table::new([
        "partitions",
        "speedup",
        "BE iterations",
        "top-off iterations",
        "PIC time",
    ]);
    for parts in [2usize, 6, 12, 24, 48] {
        let app = KMeansApp::new(k, 3, 1.0);
        let cmp = compare(
            &spec,
            &app,
            pts.clone(),
            init.clone(),
            24,
            parts,
            cost::kmeans(),
        );
        t.row([
            parts.to_string(),
            fmt_x(cmp.speedup()),
            cmp.pic.be_iterations.to_string(),
            cmp.pic.topoff_iterations.to_string(),
            fmt_secs(cmp.pic.total_time_s),
        ]);
    }
    format!(
        "Ablation — K-means sub-problem count ({n} points, small cluster)\n\n{}\n\
         expectation: a sweet spot near the cluster's slot count; very few \
         partitions under-parallelize the best-effort phase, very many weaken \
         sub-models and add best-effort iterations.\n",
        t.render()
    )
}

/// Partitioner choice for PageRank (random vs id-blocks vs BFS growth —
/// the paper's METIS discussion, §VI.B).
pub fn partitioner_choice(ctx: &ExperimentCtx) -> String {
    let n = ctx.n(20_000, 1_000);
    let parts = 8;
    let spec = ClusterSpec::small();
    let graph = block_local_graph(n, parts, 2, 8, 0.9, 67);

    let mut t = Table::new([
        "partitioner",
        "edges cut",
        "rank error vs 10-it ref",
        "speedup",
    ]);
    for (name, mode) in [
        ("random", PartitionMode::Random),
        ("block", PartitionMode::Block),
        ("bfs", PartitionMode::Bfs),
    ] {
        let app = PageRankApp::new(graph.clone(), parts, mode, 3);
        let reference = app.solve_reference(10);
        let cut = format!("{:.1}%", 100.0 * app.cut_fraction());
        let cmp = compare(
            &spec,
            &app,
            graph.records(),
            app.initial_model(),
            24,
            parts,
            cost::pagerank(),
        );
        let err: f64 = cmp
            .pic
            .final_model
            .ranks
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / reference.len() as f64;
        t.row([
            name.to_string(),
            cut,
            format!("{err:.4}"),
            fmt_x(cmp.speedup()),
        ]);
    }
    format!(
        "Ablation — PageRank partitioner ({n}-page block-local web graph, \
         {parts} partitions)\n\n{}\n\
         expectation: locality-aware partitioning (block/BFS ≈ METIS) cuts far \
         fewer edges, making sub-problems more independent and the merged model \
         closer to the reference.\n",
        t.render()
    )
}

/// Combiner on/off for the IC K-means baseline: how much of the paper's
/// gap survives the optimization it grants the baseline.
pub fn combiner_effect(ctx: &ExperimentCtx) -> String {
    let n = ctx.n(50_000, 2_000);
    let k = 100;
    let engine = pic_mapreduce::Engine::new(ClusterSpec::small());
    let pts = gaussian_mixture(n, k, 3, 1000.0, 8.0, 71);
    let model = Centroids::new(init_random_centroids(k, 3, 1000.0, 17));
    let data = pic_mapreduce::Dataset::create(&engine, "/abl/comb", pts, 24);

    use pic_apps::kmeans::{AssignMapper, AverageReducer, SumCombiner};
    let cfg = pic_mapreduce::JobConfig::new("with")
        .timing(cost::kmeans().timing)
        .reducers(6);
    let with = engine.run_with_combiner(
        &cfg,
        &data,
        &AssignMapper { model: &model },
        &SumCombiner,
        &AverageReducer,
    );
    let without = engine.run(
        &pic_mapreduce::JobConfig::new("without")
            .timing(cost::kmeans().timing)
            .reducers(6),
        &data,
        &AssignMapper { model: &model },
        &AverageReducer,
    );

    let mut t = Table::new([
        "baseline variant",
        "shuffle records",
        "network shuffle bytes",
        "job time",
    ]);
    t.row([
        "with combiner".to_string(),
        with.stats.shuffle_records.to_string(),
        fmt_bytes(with.stats.shuffle_bytes),
        fmt_secs(with.stats.total_time_s),
    ]);
    t.row([
        "without combiner".to_string(),
        without.stats.shuffle_records.to_string(),
        fmt_bytes(without.stats.shuffle_bytes),
        fmt_secs(without.stats.total_time_s),
    ]);
    format!(
        "Ablation — combiner effect on one IC K-means iteration ({n} points)\n\n{}\n\
         note: both variants spill the same raw map output ({}) to local disk — \
         the combiner shrinks only what crosses the network, which is why PIC's \
         savings are additive to it (paper §II grants the baseline combiners).\n",
        t.render(),
        fmt_bytes(with.stats.map_output_bytes),
    )
}

/// Merge strategy: plain vs count-weighted centroid averaging.
pub fn merge_strategy(ctx: &ExperimentCtx) -> String {
    let n = ctx.n(50_000, 2_000);
    let k = 100;
    let spec = ClusterSpec::small();
    let pts = gaussian_mixture(n, k, 3, 1000.0, 8.0, 73);
    let init = Centroids::new(init_random_centroids(k, 3, 1000.0, 19));

    let mut t = Table::new(["merge", "BE iterations", "top-off iterations", "final SSE"]);
    for (name, strategy) in [
        ("average", MergeStrategy::Average),
        ("weighted", MergeStrategy::WeightedAverage),
    ] {
        let app = KMeansApp::new(k, 3, 1.0).with_merge(strategy);
        let cmp = compare(
            &spec,
            &app,
            pts.clone(),
            init.clone(),
            24,
            24,
            cost::kmeans(),
        );
        let sse = pic_apps::kmeans::sse(&pts, &cmp.pic.final_model);
        t.row([
            name.to_string(),
            cmp.pic.be_iterations.to_string(),
            cmp.pic.topoff_iterations.to_string(),
            format!("{sse:.3e}"),
        ]);
    }
    format!(
        "Ablation — K-means merge strategy ({n} points, 24 partitions)\n\n{}\n\
         expectation: count-weighted averaging recovers the exact global Lloyd \
         update when partition assignments agree, typically trimming an \
         iteration or two; the paper's case study uses the plain average.\n",
        t.render()
    )
}

/// Local-iteration cap: ∞ (run to local convergence) vs tight caps.
pub fn local_cap(ctx: &ExperimentCtx) -> String {
    let n = ctx.n(50_000, 2_000);
    let k = 100;
    let spec = ClusterSpec::small();
    let pts = gaussian_mixture(n, k, 3, 1000.0, 8.0, 79);
    let init = Centroids::new(init_random_centroids(k, 3, 1000.0, 23));

    let mut t = Table::new([
        "local cap",
        "BE iterations",
        "top-off iterations",
        "PIC time",
    ]);
    for cap in [1usize, 3, 10, 50] {
        let app = KMeansApp::new(k, 3, 1.0);
        let ic_engine = pic_mapreduce::Engine::new(spec.clone());
        let data = pic_mapreduce::Dataset::create(&ic_engine, "/abl/lc", pts.clone(), 24);
        ic_engine.reset();
        let r = pic_core::driver::run_pic(
            &ic_engine,
            &app,
            &data,
            init.clone(),
            &pic_core::driver::PicOptions {
                partitions: 24,
                timing: cost::kmeans().timing,
                local_secs_per_record: Some(cost::kmeans().local_secs),
                local_cap: Some(cap),
                ..Default::default()
            },
        );
        t.row([
            cap.to_string(),
            r.be_iterations.to_string(),
            r.topoff_iterations.to_string(),
            fmt_secs(r.total_time_s),
        ]);
    }
    format!(
        "Ablation — local-iteration cap ({n} points, 24 partitions)\n\n{}\n\
         expectation: cap=1 degenerates toward per-iteration synchronization \
         (more best-effort rounds); running to local convergence concentrates \
         work in the cheap local phase.\n",
        t.render()
    )
}

/// Smart initialization vs PIC's best-effort phase. The paper argues that
/// "determining a good initial model, in general, can be as difficult as
/// finding the solution in the first place" and offers the best-effort
/// phase as the cheap alternative; k-means++ is the classic smart
/// initializer, so race them.
pub fn initializer_vs_pic(ctx: &ExperimentCtx) -> String {
    use pic_apps::kmeans::init_kmeanspp;
    let n = ctx.n(50_000, 2_000);
    let k = 100;
    let spec = ClusterSpec::small();
    let pts = gaussian_mixture(n, k, 3, 1000.0, 8.0, 83);
    let rand_init = Centroids::new(init_random_centroids(k, 3, 1000.0, 29));
    let app = KMeansApp::new(k, 3, 1.0);

    // Random init, IC and PIC.
    let cmp = compare(
        &spec,
        &app,
        pts.clone(),
        rand_init.clone(),
        24,
        24,
        cost::kmeans(),
    );

    // k-means++ init + IC. The initializer itself costs cluster time: the
    // scalable k-means|| formulation needs ~5 full passes over the data,
    // charged at the framework rate.
    let engine = pic_mapreduce::Engine::new(spec.clone());
    let data = pic_mapreduce::Dataset::create(&engine, "/abl/pp", pts.clone(), 24);
    engine.reset();
    let pp_init = Centroids::new(init_kmeanspp(&pts, k, 31));
    let passes = 5.0;
    if let pic_mapreduce::Timing::PerRecord { map_secs, .. } = cost::kmeans().timing {
        engine.advance(passes * n as f64 * map_secs / spec.map_slots as f64);
    }
    let pp_ic = pic_core::driver::run_ic(
        &engine,
        &app,
        &data,
        pp_init,
        &pic_core::driver::IcOptions {
            timing: cost::kmeans().timing,
            charge_startup: false, // init pass already started the chain
            ..Default::default()
        },
    );
    let pp_total = engine.now();

    let mut t = Table::new([
        "strategy",
        "iterations to converge",
        "total time",
        "final SSE",
    ]);
    t.row([
        "random init + IC".to_string(),
        cmp.ic.iterations.to_string(),
        fmt_secs(cmp.ic.total_time_s),
        format!("{:.3e}", pic_apps::kmeans::sse(&pts, &cmp.ic.final_model)),
    ]);
    t.row([
        "kmeans++ init + IC".to_string(),
        pp_ic.iterations.to_string(),
        fmt_secs(pp_total),
        format!("{:.3e}", pic_apps::kmeans::sse(&pts, &pp_ic.final_model)),
    ]);
    t.row([
        "random init + PIC".to_string(),
        format!(
            "{} BE + {} top-off",
            cmp.pic.be_iterations, cmp.pic.topoff_iterations
        ),
        fmt_secs(cmp.pic.total_time_s),
        format!("{:.3e}", pic_apps::kmeans::sse(&pts, &cmp.pic.final_model)),
    ]);
    format!(
        "Ablation — smart initializer vs PIC's best-effort phase ({n} points, \
         k={k})\n\n{}\n\
         expectation: kmeans++ trims IC iterations but pays initialization \
         passes; PIC's best-effort phase plays the same initializing role \
         while also skipping framework overhead per refinement step.\n",
        t.render()
    )
}

/// Strips vs 2-D grid tiles for the image smoother: tile shape controls
/// how much frozen halo every sub-problem carries.
pub fn tile_layout(ctx: &ExperimentCtx) -> String {
    use pic_apps::smoothing::{noisy_image, SmoothingApp};
    use pic_core::app::PicApp;
    use pic_mapreduce::ByteSize;
    let side = (256.0 * ctx.scale.sqrt()).max(64.0) as usize;
    let parts = 16;
    let f = noisy_image(side, side, 0.08, 3);
    let spec = ClusterSpec::medium();

    let mut t = Table::new([
        "layout",
        "sub-model bytes (halo incl.)",
        "BE iterations",
        "top-off iterations",
        "PIC time",
    ]);
    for (name, cols) in [("strips", 1usize), ("4x4 grid", 4)] {
        let app = SmoothingApp::new_grid(side, side, parts, cols, 1e-6);
        let sub_bytes: u64 = app
            .split_model(&f, parts)
            .iter()
            .map(|m| m.byte_size())
            .sum();
        let cmp = compare(
            &spec,
            &app,
            f.rows(),
            f.clone(),
            parts,
            parts,
            cost::smoothing(side),
        );
        t.row([
            name.to_string(),
            fmt_bytes(sub_bytes),
            cmp.pic.be_iterations.to_string(),
            cmp.pic.topoff_iterations.to_string(),
            fmt_secs(cmp.pic.total_time_s),
        ]);
    }
    format!(
        "Ablation — smoothing tile layout ({side}x{side} image, {parts} tiles)\n\n{}\n\
         expectation: square tiles carry less total halo than strips, but cut \
         both axes, so boundary information crosses more frozen seams per \
         round; both layouts converge to the same unique image.\n",
        t.render()
    )
}

/// All ablations, concatenated.
pub fn run(ctx: &ExperimentCtx) -> String {
    [
        partition_count(ctx),
        partitioner_choice(ctx),
        combiner_effect(ctx),
        merge_strategy(ctx),
        local_cap(ctx),
        initializer_vs_pic(ctx),
        tile_layout(ctx),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combiner_shrinks_network_not_spill() {
        let out = combiner_effect(&ExperimentCtx { scale: 0.1 });
        assert!(out.contains("with combiner"));
    }

    #[test]
    fn local_cap_one_needs_more_be_rounds() {
        let n = 5_000;
        let k = 20;
        let pts = gaussian_mixture(n, k, 3, 1000.0, 8.0, 79);
        let init = Centroids::new(init_random_centroids(k, 3, 1000.0, 23));
        let app = KMeansApp::new(k, 3, 1.0);
        let mut rounds = Vec::new();
        for cap in [1usize, 50] {
            let engine = pic_mapreduce::Engine::new(ClusterSpec::small());
            let data = pic_mapreduce::Dataset::create(&engine, "/abl/t", pts.clone(), 12);
            engine.reset();
            let r = pic_core::driver::run_pic(
                &engine,
                &app,
                &data,
                init.clone(),
                &pic_core::driver::PicOptions {
                    partitions: 12,
                    timing: cost::kmeans().timing,
                    local_secs_per_record: Some(cost::kmeans().local_secs),
                    local_cap: Some(cap),
                    ..Default::default()
                },
            );
            rounds.push(r.be_iterations);
        }
        assert!(
            rounds[0] >= rounds[1],
            "cap=1 should need at least as many BE rounds: {rounds:?}"
        );
    }
}
