//! Figure 2: K-means runtime breakdown and cluster-interconnect traffic,
//! IC vs PIC (paper: 100M points / 100 clusters / 64 nodes; here scaled to
//! 200k points on the same 64-node cluster model).

use super::common::{compare, cost};
use super::ExperimentCtx;
use crate::table::{fmt_bytes, fmt_secs, Table};
use pic_apps::kmeans::{gaussian_mixture, init_random_centroids, Centroids, KMeansApp};
use pic_simnet::ClusterSpec;

/// Run Figure 2.
pub fn run(ctx: &ExperimentCtx) -> String {
    run_full(ctx).0
}

/// Run Figure 2 and also return the comparison with both runs' traces —
/// the smoke binary validates and exports them.
pub fn run_full(ctx: &ExperimentCtx) -> (String, super::common::Comparison<Centroids>) {
    let n = ctx.n(400_000, 4_000);
    let k = 100;
    let dim = 3;
    let spec = ClusterSpec::medium();
    let partitions = 64; // one sub-problem per node, as the paper sizes it

    let app = KMeansApp::new(k, dim, 1.0);
    let pts = gaussian_mixture(n, k, dim, 1000.0, 40.0, 21);
    let init = Centroids::new(init_random_centroids(k, dim, 1000.0, 5));

    // Quality metric: relative SSE excess on a fixed ~2k-point subsample
    // against the sequential solution on that subsample — deterministic,
    // and cheap enough to probe every iteration even at full scale.
    let stride = (n / 2_000).max(1);
    let sample: Vec<_> = pts.iter().step_by(stride).cloned().collect();
    let reference = app.solve_reference(&sample, &init, 300);
    let app = app.with_eval_sample(sample, &reference);

    let cmp = compare(&spec, &app, pts, init, 256, partitions, cost::kmeans());

    let ic_traffic = cmp.ic.traffic;
    let pic_traffic = cmp.pic.traffic();

    let mut time = Table::new(["run", "phase", "time", "iterations"]);
    time.row([
        "IC baseline",
        "whole run",
        &fmt_secs(cmp.ic.total_time_s),
        &cmp.ic.iterations.to_string(),
    ]);
    time.row([
        "PIC",
        "best-effort",
        &fmt_secs(cmp.pic.be_time_s),
        &cmp.pic.be_iterations.to_string(),
    ]);
    time.row([
        "PIC",
        "top-off",
        &fmt_secs(cmp.pic.topoff_time_s),
        &cmp.pic.topoff_iterations.to_string(),
    ]);
    time.row(["PIC", "total", &fmt_secs(cmp.pic.total_time_s), ""]);

    let mut traffic = Table::new(["run", "intermediate data", "model updates"]);
    traffic.row([
        "IC baseline",
        &fmt_bytes(ic_traffic.get(pic_simnet::TrafficClass::MapSpill)),
        &fmt_bytes(ic_traffic.model_update_total()),
    ]);
    traffic.row([
        "PIC",
        &fmt_bytes(pic_traffic.get(pic_simnet::TrafficClass::MapSpill)),
        &fmt_bytes(pic_traffic.model_update_total()),
    ]);

    let report = format!(
        "Figure 2 — K-means runtime and traffic, IC vs PIC ({n} points, {k} clusters, \
         64-node cluster; paper ran 100M points)\n\n{}\n{}\n{}\n\
         paper expectation: BE phase ≈ 1/5 of IC time; top-off ≈ 1/6 of IC's \
         iterations; overall ≈ 3x; traffic collapses by orders of magnitude.\n",
        time.render(),
        traffic.render(),
        pic_core::timeline::pic_timeline(&cmp.pic, Some(cmp.ic.total_time_s)),
    );
    (report, cmp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shape_holds_at_small_scale() {
        // Shrunk geometry that keeps ≥50 points per cluster per partition.
        let n = 8_000;
        let app = KMeansApp::new(10, 3, 1.0);
        // Seeds picked so this fixed draw sits in the paper's regime under
        // the vendored rand stand-in's stream (a poor random init that IC
        // pays ~6 iterations for).
        let pts = gaussian_mixture(n, 10, 3, 1000.0, 8.0, 7);
        let init = Centroids::new(init_random_centroids(10, 3, 1000.0, 2));
        let cmp = compare(
            &ClusterSpec::medium(),
            &app,
            pts,
            init,
            16,
            16,
            cost::kmeans(),
        );
        // Loose bound: at this tiny scale fixed overheads eat much of the
        // win (the full-size fig2 run lands near 2.6x).
        assert!(cmp.speedup() > 1.3, "speedup {}", cmp.speedup());
        assert!(cmp.pic.topoff_iterations < cmp.ic.iterations);
        let ic_inter = cmp.ic.traffic.get(pic_simnet::TrafficClass::MapSpill);
        let pic_inter = cmp.pic.traffic().get(pic_simnet::TrafficClass::MapSpill);
        assert!(
            pic_inter < ic_inter / 2,
            "PIC intermediate {pic_inter} vs IC {ic_inter}"
        );
    }

    #[test]
    fn fig2_renders() {
        let out = run(&ExperimentCtx { scale: 0.01 });
        assert!(out.contains("Figure 2"));
        assert!(out.contains("best-effort"));
        assert!(out.contains("speedup"));
    }
}
