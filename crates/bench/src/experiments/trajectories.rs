//! Figure 12: accuracy-vs-time trajectories for (a) neural-network
//! training, (b) K-means clustering and (c) the linear solver.

use super::common::{compare, cost, Comparison};
use super::ExperimentCtx;
use crate::table::Table;
use pic_apps::kmeans::{gaussian_mixture, init_random_centroids, Centroids, KMeansApp};
use pic_apps::linsolve::{diag_dominant_system, LinSolveApp};
use pic_apps::neuralnet::{ocr_like_split, Mlp, NeuralNetApp};
use pic_core::report::TrajectoryPoint;
use pic_simnet::ClusterSpec;

/// Render two trajectories side by side as `(time, error)` rows.
fn render_trajectories(
    title: &str,
    ic: &[TrajectoryPoint],
    pic: &[TrajectoryPoint],
    expectation: &str,
) -> String {
    let mut t = Table::new(["series", "t (s)", "error"]);
    // Long runs produce hundreds of points; subsample for readability but
    // always keep the last point of each series.
    let add = |t: &mut Table, name: &str, series: &[TrajectoryPoint]| {
        let step = series.len().div_ceil(30).max(1);
        for (i, p) in series.iter().enumerate() {
            if i % step == 0 || i + 1 == series.len() {
                t.row([name, &format!("{:.1}", p.t_s), &format!("{:.6}", p.error)]);
            }
        }
    };
    add(&mut t, "IC", ic);
    add(&mut t, "PIC", pic);
    format!("{title}\n\n{}\n{expectation}\n", t.render())
}

/// Shared shape checks on a pair of trajectories; returns a summary line.
pub fn trajectory_summary<M>(cmp: &Comparison<M>) -> String {
    let ic_final = cmp
        .ic
        .trajectory
        .last()
        .map(|p| p.error)
        .unwrap_or(f64::NAN);
    let pic_final = cmp
        .pic
        .trajectory
        .last()
        .map(|p| p.error)
        .unwrap_or(f64::NAN);
    let ic_t = cmp.ic.total_time_s;
    let be_t = cmp.pic.be_time_s;
    format!(
        "IC reaches error {ic_final:.6} at t={ic_t:.1}s; PIC's best-effort phase \
         ends at t={be_t:.1}s ({:.0}% of IC time) and PIC finishes at error \
         {pic_final:.6}.",
        100.0 * be_t / ic_t
    )
}

/// Figure 12(a): neural-network training, validation misclassification
/// vs time.
pub fn fig12a(ctx: &ExperimentCtx) -> String {
    let n = ctx.n(10_000, 500);
    let (train, valid) = ocr_like_split(n, n / 10, 10, 64, 0.2, 71);
    let mut app = NeuralNetApp::new(valid);
    app.max_iterations = 60;
    let init = Mlp::random(64, 32, 10, 19);
    let cmp = compare(
        &ClusterSpec::small(),
        &app,
        train,
        init,
        24,
        24,
        cost::neuralnet(),
    );
    let summary = trajectory_summary(&cmp);
    render_trajectories(
        &format!(
            "Figure 12(a) — neural network training: validation error vs time \
             ({n} training vectors; paper used ~210k)"
        ),
        &cmp.ic.trajectory,
        &cmp.pic.trajectory,
        &format!(
            "{summary}\npaper expectation: PIC reaches an error virtually \
             identical to the baseline's final error in less than a quarter of \
             the time."
        ),
    )
}

/// Figure 12(b): K-means, distance of centroids to the sequential
/// reference solution vs time.
pub fn fig12b(ctx: &ExperimentCtx) -> String {
    let n = ctx.n(100_000, 2_000);
    let k = 100;
    let dim = 3;
    let base = KMeansApp::new(k, dim, 1.0);
    let pts = gaussian_mixture(n, k, dim, 1000.0, 40.0, 83);
    let init = Centroids::new(init_random_centroids(k, dim, 1000.0, 29));
    let reference = base.solve_reference(&pts, &init, 300);
    // Quality metric on a 10% evaluation sample: relative SSE excess over
    // the sequential reference (0 = reference-equivalent clustering).
    let sample: Vec<_> = pts.iter().step_by(10).cloned().collect();
    let app = base.with_eval_sample(sample, &reference);
    let cmp = compare(
        &ClusterSpec::small(),
        &app,
        pts,
        init,
        24,
        24,
        cost::kmeans(),
    );
    let summary = trajectory_summary(&cmp);
    render_trajectories(
        &format!(
            "Figure 12(b) — K-means: clustering error (relative SSE excess \
             over the sequential reference) vs time ({n} points, k={k})"
        ),
        &cmp.ic.trajectory,
        &cmp.pic.trajectory,
        &format!(
            "{summary}\npaper expectation: centroids converge much faster in \
             PIC's best-effort phase than in the baseline."
        ),
    )
}

/// Figure 12(c): linear solver, distance to the golden solution vs time.
pub fn fig12c(_ctx: &ExperimentCtx) -> String {
    let n = 100; // the paper's exact problem size
    let sys = diag_dominant_system(n, 0.05, 91);
    let app = LinSolveApp::new(n, 5, 1e-8).with_exact(sys.exact.clone());
    let cmp = compare(
        &ClusterSpec::small(),
        &app,
        sys.rows.clone(),
        vec![0.0; n],
        5,
        5,
        cost::linsolve(),
    );
    let summary = trajectory_summary(&cmp);
    render_trajectories(
        &format!(
            "Figure 12(c) — linear equation solver: distance to the unique \
             golden solution vs time ({n} variables, weakly diagonally dominant)"
        ),
        &cmp.ic.trajectory,
        &cmp.pic.trajectory,
        &format!(
            "{summary}\npaper expectation: the best-effort phase reaches \
             baseline-comparable quality in about one-third of the time."
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12c_be_phase_is_faster_to_quality() {
        let sys = diag_dominant_system(100, 0.05, 91);
        let app = LinSolveApp::new(100, 5, 1e-8).with_exact(sys.exact.clone());
        let cmp = compare(
            &ClusterSpec::small(),
            &app,
            sys.rows.clone(),
            vec![0.0; 100],
            5,
            5,
            cost::linsolve(),
        );
        // BE phase must end well before the IC baseline does.
        assert!(
            cmp.pic.be_time_s < 0.6 * cmp.ic.total_time_s,
            "be {} vs ic {}",
            cmp.pic.be_time_s,
            cmp.ic.total_time_s
        );
        // And the final answers agree (unique solution).
        assert!(sys.error(&cmp.pic.final_model) < 1e-6);
        assert!(sys.error(&cmp.ic.final_model) < 1e-6);
    }

    #[test]
    fn fig12b_trajectories_decrease() {
        let base = KMeansApp::new(10, 3, 1e-3);
        let pts = gaussian_mixture(3_000, 10, 3, 1000.0, 8.0, 83);
        let init = Centroids::new(init_random_centroids(10, 3, 1000.0, 29));
        let reference = base.solve_reference(&pts, &init, 300);
        let app = base.with_reference(reference);
        let cmp = compare(
            &ClusterSpec::small(),
            &app,
            pts,
            init,
            24,
            12,
            cost::kmeans(),
        );
        for traj in [&cmp.ic.trajectory, &cmp.pic.trajectory] {
            assert!(traj.len() >= 2);
            assert!(
                traj.last().unwrap().error <= traj.first().unwrap().error,
                "error should decrease overall"
            );
        }
    }
}
