//! Experiment runners, one per table/figure of the paper's evaluation.
//!
//! Each runner builds the workload at a laptop-scale size with the same
//! statistical structure as the paper's, executes the IC baseline and the
//! PIC implementation on the simulated cluster the paper used for that
//! experiment, and renders the corresponding table/figure rows together
//! with the paper's expected shape. EXPERIMENTS.md records the outcomes.

pub mod ablation;
pub mod chaos;
pub mod common;
pub mod explain;
pub mod fig2;
pub mod report;
pub mod speedups;
pub mod tables;
pub mod tenancy;
pub mod trajectories;
pub mod watch;

/// Shared knob: scales every workload's record count. `1.0` is the
/// default size documented in DESIGN.md; smaller values make smoke runs
/// fast, larger values stress the harness.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentCtx {
    /// Record-count multiplier.
    pub scale: f64,
}

impl Default for ExperimentCtx {
    fn default() -> Self {
        ExperimentCtx { scale: 1.0 }
    }
}

impl ExperimentCtx {
    /// Scale a default record count, keeping at least `min`.
    pub fn n(&self, default: usize, min: usize) -> usize {
        ((default as f64 * self.scale) as usize).max(min)
    }
}

/// All paper experiments, in paper order, plus the design-choice
/// ablations DESIGN.md §5 calls out.
pub const ALL: &[&str] = &[
    "fig2", "fig9", "fig10", "fig11", "fig12a", "fig12b", "fig12c", "table1", "table2", "table3",
    "weak", "ablation",
];

/// Run one experiment by name, returning its rendered report.
pub fn run(name: &str, ctx: &ExperimentCtx) -> Result<String, String> {
    match name {
        "fig2" => Ok(fig2::run(ctx)),
        "fig9" => Ok(speedups::fig9(ctx)),
        "fig10" => Ok(speedups::fig10(ctx)),
        "fig11" => Ok(speedups::fig11(ctx)),
        "fig12a" => Ok(trajectories::fig12a(ctx)),
        "fig12b" => Ok(trajectories::fig12b(ctx)),
        "fig12c" => Ok(trajectories::fig12c(ctx)),
        "table1" => Ok(tables::table1(ctx)),
        "table2" => Ok(tables::table2(ctx)),
        "table3" => Ok(tables::table3(ctx)),
        "weak" => Ok(speedups::weak_scaling(ctx)),
        "ablation" => Ok(ablation::run(ctx)),
        other => Err(format!("unknown experiment '{other}'; known: {ALL:?}")),
    }
}
