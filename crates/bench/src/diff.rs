//! `pic diff` — differential regression attribution between two
//! `BENCH_pic.json` documents.
//!
//! Where the regression gate (`json::diff`) answers *whether* two reports
//! differ, this module answers *where the time went*: per-app simulated
//! seconds along the critical-path categories and per-phase rollups,
//! byte deltas by traffic class, the first point at which the
//! convergence curves diverge, and — when both documents carry a
//! `host_profile` section — host-side stage deltas. Results come back
//! ranked (most-regressing segment first) for the CLI table and as a
//! machine-readable JSON document for tooling.

use crate::json::Json;
use crate::table::Table;
use pic_simnet::report::fmt_f64;
use std::fmt::Write as _;

/// One attributed delta along a single axis of the report.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaEntry {
    /// App the segment belongs to (empty for suite-level host stages).
    pub app: String,
    /// Attribution axis: `total`, `critical-path`, `phase`, `traffic`,
    /// or `host-stage`.
    pub axis: &'static str,
    /// Driver side (`ic` / `pic`), empty when the axis has no side.
    pub side: String,
    /// Segment label within the axis (category, phase, class, stage).
    pub label: String,
    /// Baseline value (seconds or bytes depending on the axis).
    pub old: f64,
    /// Fresh value.
    pub new: f64,
}

impl DeltaEntry {
    /// Signed change, positive when the fresh run regressed (grew).
    pub fn delta(&self) -> f64 {
        self.new - self.old
    }

    /// Human-readable segment path, e.g. `kmeans/pic/phase:solve`.
    pub fn segment(&self) -> String {
        let mut s = String::new();
        if !self.app.is_empty() {
            s.push_str(&self.app);
            s.push('/');
        }
        if !self.side.is_empty() {
            s.push_str(&self.side);
            s.push('/');
        }
        let _ = write!(s, "{}:{}", self.axis, self.label);
        s
    }
}

/// The first point at which an app's convergence curve left the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityDivergence {
    /// App whose curve diverged.
    pub app: String,
    /// Which driver's curve (`ic` / `pic`).
    pub driver: String,
    /// Index of the first diverging point.
    pub index: usize,
    /// Simulated time of that point (baseline side).
    pub t_s: f64,
    /// Baseline error at the point (`NaN` when the point only exists on
    /// one side because the curves have different lengths).
    pub old_err: f64,
    /// Fresh error at the point (`NaN` when missing, as above).
    pub new_err: f64,
}

/// Full attribution between two reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Simulated-seconds deltas (totals, critical-path categories,
    /// phase rollups), sorted most-regressing first.
    pub time: Vec<DeltaEntry>,
    /// Byte deltas by traffic class, sorted by |delta| descending.
    pub bytes: Vec<DeltaEntry>,
    /// Host-stage wall-clock deltas; populated only when both documents
    /// carry a non-null `host_profile` and a stage moved more than the
    /// host noise band (these are machine-dependent, so they never
    /// affect [`DiffReport::is_empty`]).
    pub host: Vec<DeltaEntry>,
    /// First divergence point per app/driver curve that moved.
    pub divergence: Vec<QualityDivergence>,
    /// Structural observations (apps present on one side only, scale
    /// mismatch) that make the attribution partial.
    pub notes: Vec<String>,
}

impl DiffReport {
    /// True when nothing simulated was attributed: no time or byte
    /// deltas, no curve divergence, and no structural notes. Host-stage
    /// deltas are ignored — wall-clock jitter is expected between runs.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
            && self.bytes.is_empty()
            && self.divergence.is_empty()
            && self.notes.is_empty()
    }

    /// Render the ranked attribution tables (at most `top` rows each;
    /// `0` means all).
    pub fn render(&self, top: usize) -> String {
        let cap = |n: usize| if top == 0 { n } else { n.min(top) };
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("pic diff: no attributed deltas — reports are equivalent\n");
            if !self.host.is_empty() {
                let _ = writeln!(
                    out,
                    "(host-stage wall-clock moved on {} stage(s); simulated results identical)",
                    self.host.len()
                );
            }
            return out;
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        if !self.time.is_empty() {
            let mut t = Table::new(["#", "segment", "old (s)", "new (s)", "delta (s)"]);
            for (i, e) in self.time.iter().take(cap(self.time.len())).enumerate() {
                t.row([
                    (i + 1).to_string(),
                    e.segment(),
                    format!("{:.6}", e.old),
                    format!("{:.6}", e.new),
                    format!("{:+.6}", e.delta()),
                ]);
            }
            let _ = writeln!(out, "top regressing segments (simulated seconds):");
            out.push_str(&t.render());
            out.push('\n');
        }
        if !self.bytes.is_empty() {
            let mut t = Table::new(["#", "segment", "old (B)", "new (B)", "delta (B)"]);
            for (i, e) in self.bytes.iter().take(cap(self.bytes.len())).enumerate() {
                t.row([
                    (i + 1).to_string(),
                    e.segment(),
                    format!("{:.0}", e.old),
                    format!("{:.0}", e.new),
                    format!("{:+.0}", e.delta()),
                ]);
            }
            let _ = writeln!(out, "traffic deltas (bytes by class):");
            out.push_str(&t.render());
            out.push('\n');
        }
        for d in &self.divergence {
            let _ = writeln!(
                out,
                "quality: {}/{} curves diverge at point {} (t={:.6}s): err {} -> {}",
                d.app,
                d.driver,
                d.index,
                d.t_s,
                fmt_f64(d.old_err),
                fmt_f64(d.new_err),
            );
        }
        if !self.host.is_empty() {
            let mut t = Table::new(["#", "stage", "old (s)", "new (s)", "delta (s)"]);
            for (i, e) in self.host.iter().take(cap(self.host.len())).enumerate() {
                t.row([
                    (i + 1).to_string(),
                    e.label.clone(),
                    format!("{:.6}", e.old),
                    format!("{:.6}", e.new),
                    format!("{:+.6}", e.delta()),
                ]);
            }
            let _ = writeln!(out, "host-stage deltas (wall clock, informational):");
            out.push_str(&t.render());
        }
        out
    }

    /// Machine-readable attribution document.
    pub fn to_json(&self) -> String {
        fn entries(out: &mut String, list: &[DeltaEntry], unit: &str) {
            out.push_str("[\n");
            for (i, e) in list.iter().enumerate() {
                let _ = write!(
                    out,
                    "    {{\"app\": \"{}\", \"axis\": \"{}\", \"side\": \"{}\", \
                     \"label\": \"{}\", \"old_{unit}\": {}, \"new_{unit}\": {}, \
                     \"delta_{unit}\": {}}}",
                    e.app,
                    e.axis,
                    e.side,
                    e.label,
                    fmt_f64(e.old),
                    fmt_f64(e.new),
                    fmt_f64(e.delta()),
                );
                out.push_str(if i + 1 < list.len() { ",\n" } else { "\n" });
            }
            out.push_str("  ]");
        }
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"attributed\": {},", !self.is_empty());
        out.push_str("  \"time_deltas\": ");
        entries(&mut out, &self.time, "s");
        out.push_str(",\n  \"byte_deltas\": ");
        entries(&mut out, &self.bytes, "bytes");
        out.push_str(",\n  \"host_deltas\": ");
        entries(&mut out, &self.host, "s");
        out.push_str(",\n  \"quality_divergence\": [\n");
        for (i, d) in self.divergence.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"app\": \"{}\", \"driver\": \"{}\", \"index\": {}, \
                 \"t_s\": {}, \"old_err\": {}, \"new_err\": {}}}",
                d.app,
                d.driver,
                d.index,
                fmt_f64(d.t_s),
                fmt_f64(d.old_err),
                fmt_f64(d.new_err),
            );
            out.push_str(if i + 1 < self.divergence.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"notes\": [");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", n.replace('"', "\\\""));
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Does `(a, b)` differ beyond the relative band `eps` (floored at an
/// absolute magnitude of 1.0, like the regression gate's tolerance)?
fn exceeds(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() > eps * a.abs().max(b.abs()).max(1.0)
}

/// Relative noise band for host-stage wall-clock seconds: stages are
/// only reported when they move more than 5% — host timings jitter
/// between runs even when the simulated work is identical.
const HOST_BAND: f64 = 0.05;

fn num(v: Option<&Json>) -> Option<f64> {
    v.and_then(Json::as_f64)
}

/// Union of object keys across two (possibly absent) objects, first
/// document's order first, then fresh-only keys in their own order.
fn key_union<'a>(a: Option<&'a Json>, b: Option<&'a Json>) -> Vec<&'a str> {
    let mut keys: Vec<&str> = Vec::new();
    for side in [a, b] {
        if let Some(Json::Obj(fields)) = side {
            for (k, _) in fields {
                if !keys.contains(&k.as_str()) {
                    keys.push(k);
                }
            }
        }
    }
    keys
}

/// Attribute the differences between two parsed `BENCH_pic.json`
/// documents. `epsilon` is the relative tolerance for simulated seconds
/// (bytes compare exactly). Errors only on documents that are not
/// reports at all (no `apps` array).
pub fn diff_docs(old: &Json, new: &Json, epsilon: f64) -> Result<DiffReport, String> {
    let old_apps = match old.get("apps") {
        Some(Json::Arr(a)) => a,
        _ => return Err("baseline document has no 'apps' array".into()),
    };
    let new_apps = match new.get("apps") {
        Some(Json::Arr(a)) => a,
        _ => return Err("fresh document has no 'apps' array".into()),
    };
    let mut report = DiffReport::default();

    let (os, ns) = (num(old.get("scale")), num(new.get("scale")));
    if os != ns {
        report.notes.push(format!(
            "scale mismatch: {os:?} vs {ns:?} — deltas span workloads"
        ));
    }

    let name_of = |app: &Json| app.get("app").and_then(Json::as_str).map(str::to_string);

    for old_app in old_apps {
        let Some(name) = name_of(old_app) else {
            continue;
        };
        let Some(new_app) = new_apps
            .iter()
            .find(|a| name_of(a).as_deref() == Some(&name))
        else {
            report
                .notes
                .push(format!("app '{name}' missing from fresh report"));
            continue;
        };
        diff_app(&name, old_app, new_app, epsilon, &mut report);
    }
    for new_app in new_apps {
        let Some(name) = name_of(new_app) else {
            continue;
        };
        if !old_apps
            .iter()
            .any(|a| name_of(a).as_deref() == Some(&name))
        {
            report
                .notes
                .push(format!("app '{name}' missing from baseline"));
        }
    }

    diff_host(
        old.get("host_profile"),
        new.get("host_profile"),
        &mut report,
    );

    // Most-regressing first: simulated time ranks by signed delta
    // (growth is a regression), bytes by magnitude.
    report
        .time
        .sort_by(|a, b| b.delta().partial_cmp(&a.delta()).expect("finite"));
    report.bytes.sort_by(|a, b| {
        b.delta()
            .abs()
            .partial_cmp(&a.delta().abs())
            .expect("finite")
    });
    report.host.sort_by(|a, b| {
        b.delta()
            .abs()
            .partial_cmp(&a.delta().abs())
            .expect("finite")
    });
    Ok(report)
}

fn diff_app(name: &str, old_app: &Json, new_app: &Json, epsilon: f64, report: &mut DiffReport) {
    for (key, side) in [("ic_total_s", "ic"), ("pic_total_s", "pic")] {
        if let (Some(a), Some(b)) = (num(old_app.get(key)), num(new_app.get(key))) {
            if exceeds(a, b, epsilon) {
                report.time.push(DeltaEntry {
                    app: name.to_string(),
                    axis: "total",
                    side: side.to_string(),
                    label: "total_s".to_string(),
                    old: a,
                    new: b,
                });
            }
        }
    }

    for side in ["ic", "pic"] {
        let (o, n) = (old_app.get(side), new_app.get(side));

        let ocp = o
            .and_then(|v| v.get("critical_path"))
            .and_then(|v| v.get("by_cat_s"));
        let ncp = n
            .and_then(|v| v.get("critical_path"))
            .and_then(|v| v.get("by_cat_s"));
        for cat in key_union(ocp, ncp) {
            let a = num(ocp.and_then(|v| v.get(cat))).unwrap_or(0.0);
            let b = num(ncp.and_then(|v| v.get(cat))).unwrap_or(0.0);
            if exceeds(a, b, epsilon) {
                report.time.push(DeltaEntry {
                    app: name.to_string(),
                    axis: "critical-path",
                    side: side.to_string(),
                    label: cat.to_string(),
                    old: a,
                    new: b,
                });
            }
        }

        let oph = o.and_then(|v| v.get("phases"));
        let nph = n.and_then(|v| v.get("phases"));
        for phase in key_union(oph, nph) {
            let a = num(oph
                .and_then(|v| v.get(phase))
                .and_then(|v| v.get("total_s")))
            .unwrap_or(0.0);
            let b = num(nph
                .and_then(|v| v.get(phase))
                .and_then(|v| v.get("total_s")))
            .unwrap_or(0.0);
            if exceeds(a, b, epsilon) {
                report.time.push(DeltaEntry {
                    app: name.to_string(),
                    axis: "phase",
                    side: side.to_string(),
                    label: phase.to_string(),
                    old: a,
                    new: b,
                });
            }
        }

        let ocb = o.and_then(|v| v.get("class_bytes"));
        let ncb = n.and_then(|v| v.get("class_bytes"));
        for class in key_union(ocb, ncb) {
            let a = num(ocb.and_then(|v| v.get(class))).unwrap_or(0.0);
            let b = num(ncb.and_then(|v| v.get(class))).unwrap_or(0.0);
            if a != b {
                report.bytes.push(DeltaEntry {
                    app: name.to_string(),
                    axis: "traffic",
                    side: side.to_string(),
                    label: class.to_string(),
                    old: a,
                    new: b,
                });
            }
        }
    }

    for (curve_key, driver) in [("ic_curve", "ic"), ("pic_curve", "pic")] {
        let oc = old_app.get("quality").and_then(|q| q.get(curve_key));
        let nc = new_app.get("quality").and_then(|q| q.get(curve_key));
        if let (Some(Json::Arr(oc)), Some(Json::Arr(nc))) = (oc, nc) {
            if let Some(d) = curve_divergence(name, driver, oc, nc, epsilon) {
                report.divergence.push(d);
            }
        }
    }
}

/// First index at which two convergence curves part ways (error or
/// timestamp beyond `epsilon`, or one curve simply ending early).
fn curve_divergence(
    app: &str,
    driver: &str,
    old: &[Json],
    new: &[Json],
    epsilon: f64,
) -> Option<QualityDivergence> {
    for (i, (op, np)) in old.iter().zip(new.iter()).enumerate() {
        let (oe, ne) = (num(op.get("err")), num(np.get("err")));
        let (ot, nt) = (num(op.get("t_s")), num(np.get("t_s")));
        let moved = match ((oe, ne), (ot, nt)) {
            ((Some(a), Some(b)), (Some(ta), Some(tb))) => {
                exceeds(a, b, epsilon) || exceeds(ta, tb, epsilon)
            }
            _ => true,
        };
        if moved {
            return Some(QualityDivergence {
                app: app.to_string(),
                driver: driver.to_string(),
                index: i,
                t_s: ot.unwrap_or(f64::NAN),
                old_err: oe.unwrap_or(f64::NAN),
                new_err: ne.unwrap_or(f64::NAN),
            });
        }
    }
    if old.len() != new.len() {
        let i = old.len().min(new.len());
        let longer = if old.len() > new.len() { old } else { new };
        return Some(QualityDivergence {
            app: app.to_string(),
            driver: driver.to_string(),
            index: i,
            t_s: num(longer[i].get("t_s")).unwrap_or(f64::NAN),
            old_err: if old.len() > i {
                num(old[i].get("err")).unwrap_or(f64::NAN)
            } else {
                f64::NAN
            },
            new_err: if new.len() > i {
                num(new[i].get("err")).unwrap_or(f64::NAN)
            } else {
                f64::NAN
            },
        });
    }
    None
}

/// Host-stage deltas when both documents carry a profile. Missing or
/// null profiles on either side attribute nothing — host data is
/// opportunistic, not required.
fn diff_host(old: Option<&Json>, new: Option<&Json>, report: &mut DiffReport) {
    // A side without a profile is `null` (or absent entirely) — either
    // way there is nothing to compare against.
    let (Some(o @ Json::Obj(_)), Some(n @ Json::Obj(_))) = (old, new) else {
        return;
    };
    let (os, ns) = (o.get("stages"), n.get("stages"));
    for stage in key_union(os, ns) {
        let a = num(os.and_then(|v| v.get(stage)).and_then(|v| v.get("total_s"))).unwrap_or(0.0);
        let b = num(ns.and_then(|v| v.get(stage)).and_then(|v| v.get("total_s"))).unwrap_or(0.0);
        if (a - b).abs() > HOST_BAND * a.abs().max(b.abs()) {
            report.host.push(DeltaEntry {
                app: String::new(),
                axis: "host-stage",
                side: String::new(),
                label: stage.to_string(),
                old: a,
                new: b,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{report as perf, ExperimentCtx};
    use crate::json;

    fn linsolve_doc() -> String {
        let ctx = ExperimentCtx { scale: 0.01 };
        let runs = perf::collect(&ctx, &["linsolve"]).unwrap();
        perf::bench_json(&ctx, &runs, &[], None, None)
    }

    /// Navigate a mutable path; numeric segments index arrays.
    fn at<'j>(doc: &'j mut Json, path: &[&str]) -> &'j mut Json {
        let mut cur = doc;
        for seg in path {
            cur = match cur {
                Json::Obj(fields) => {
                    &mut fields
                        .iter_mut()
                        .find(|(k, _)| k == seg)
                        .unwrap_or_else(|| panic!("no key '{seg}'"))
                        .1
                }
                Json::Arr(items) => &mut items[seg.parse::<usize>().expect("index")],
                other => panic!("cannot descend into {other:?} at '{seg}'"),
            };
        }
        cur
    }

    fn set_num(doc: &mut Json, path: &[&str], f: impl Fn(f64) -> f64) {
        let v = at(doc, path);
        let Json::Num(n, raw) = v else {
            panic!("not a number at {path:?}")
        };
        *n = f(*n);
        *raw = format!("{n}");
    }

    /// Two same-seed runs attribute nothing: every simulated quantity is
    /// deterministic, and only `host_*` wall-clock differs.
    #[test]
    fn same_seed_runs_attribute_zero_delta() {
        let old = json::parse(&linsolve_doc()).unwrap();
        let new = json::parse(&linsolve_doc()).unwrap();
        let report = diff_docs(&old, &new, 1e-9).unwrap();
        assert!(report.is_empty(), "unexpected attribution: {report:?}");
        assert!(report.render(0).contains("no attributed deltas"));
        assert!(report.to_json().contains("\"attributed\": false"));
    }

    /// A perturbed run ranks the perturbed segment and traffic class
    /// first: doubling the pic shuffle-rack bytes tops the byte table,
    /// and the largest injected time delta tops the segment table.
    #[test]
    fn perturbed_run_ranks_injected_segment_first() {
        let old = json::parse(&linsolve_doc()).unwrap();
        let mut new = old.clone();

        set_num(
            &mut new,
            &["apps", "0", "pic", "class_bytes", "shuffle-rack"],
            |v| v * 2.0,
        );
        // Grow one pic phase a lot and one ic critical-path category a
        // little; ranking must put the bigger regression first.
        set_num(
            &mut new,
            &["apps", "0", "pic", "phases", "topoff", "total_s"],
            |v| v + 50.0,
        );
        set_num(
            &mut new,
            &["apps", "0", "ic", "critical_path", "by_cat_s", "task"],
            |v| v + 5.0,
        );

        let report = diff_docs(&old, &new, 1e-9).unwrap();
        assert!(!report.is_empty());

        let top = &report.time[0];
        assert_eq!(
            (
                top.app.as_str(),
                top.side.as_str(),
                top.axis,
                top.label.as_str()
            ),
            ("linsolve", "pic", "phase", "topoff"),
            "biggest time regression first: {:?}",
            report.time
        );
        assert!((top.delta() - 50.0).abs() < 1e-6);
        assert_eq!(report.time[1].label, "task");

        let top_bytes = &report.bytes[0];
        assert_eq!(
            (top_bytes.side.as_str(), top_bytes.label.as_str()),
            ("pic", "shuffle-rack"),
            "perturbed traffic class first: {:?}",
            report.bytes
        );
        assert_eq!(top_bytes.new, top_bytes.old * 2.0);

        let rendered = report.render(5);
        assert!(rendered.contains("phase:topoff"), "{rendered}");
        assert!(rendered.contains("shuffle-rack"), "{rendered}");
        let json_doc = report.to_json();
        assert!(json_doc.contains("\"attributed\": true"));
        // The machine-readable output parses with our own parser.
        assert!(json::parse(&json_doc).is_ok());
    }

    /// Quality-curve perturbation reports the first diverging point.
    #[test]
    fn quality_divergence_reports_first_moved_point() {
        let old = json::parse(&linsolve_doc()).unwrap();
        let mut new = old.clone();
        set_num(
            &mut new,
            &["apps", "0", "quality", "pic_curve", "2", "err"],
            |v| v + 1.0,
        );
        let report = diff_docs(&old, &new, 1e-9).unwrap();
        assert_eq!(report.divergence.len(), 1, "{:?}", report.divergence);
        let d = &report.divergence[0];
        assert_eq!(
            (d.app.as_str(), d.driver.as_str(), d.index),
            ("linsolve", "pic", 2)
        );
        assert!((d.new_err - d.old_err - 1.0).abs() < 1e-9);
    }

    /// Host-stage deltas surface only when both sides carry profiles,
    /// and never make an otherwise-clean diff non-empty.
    #[test]
    fn host_stage_deltas_are_informational() {
        let mk = |map_s: f64| {
            format!(
                r#"{{"scale": 1, "apps": [], "host_profile": {{"total_s": {t}, "stages": {{"map": {{"calls": 4, "bytes": 64, "total_s": {map_s}, "share": 1.0}}}}}}}}"#,
                t = map_s,
                map_s = map_s
            )
        };
        let old = json::parse(&mk(1.0)).unwrap();
        let new = json::parse(&mk(2.0)).unwrap();
        let report = diff_docs(&old, &new, 1e-9).unwrap();
        assert!(report.is_empty(), "host deltas must not attribute");
        assert_eq!(report.host.len(), 1);
        assert_eq!(report.host[0].label, "map");
        assert!(report.render(0).contains("host-stage wall-clock moved"));

        // One side null → no host attribution, no error.
        let null_side = json::parse(r#"{"scale": 1, "apps": [], "host_profile": null}"#).unwrap();
        let report = diff_docs(&null_side, &new, 1e-9).unwrap();
        assert!(report.host.is_empty());

        // Jitter inside the 5% band stays quiet.
        let close = json::parse(&mk(1.03)).unwrap();
        let report = diff_docs(&old, &close, 1e-9).unwrap();
        assert!(report.host.is_empty(), "{:?}", report.host);
    }

    /// Structural mismatches (missing app, scale mismatch) are notes,
    /// which count as attribution but don't crash the differ.
    #[test]
    fn structural_mismatches_become_notes() {
        let a = json::parse(r#"{"scale": 1, "apps": [{"app": "kmeans"}]}"#).unwrap();
        let b = json::parse(r#"{"scale": 2, "apps": []}"#).unwrap();
        let report = diff_docs(&a, &b, 1e-9).unwrap();
        assert!(!report.is_empty());
        assert_eq!(report.notes.len(), 2, "{:?}", report.notes);
        assert!(diff_docs(&Json::Null, &b, 1e-9).is_err());
    }
}
