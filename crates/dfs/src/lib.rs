//! # pic-dfs — simulated replicated distributed file system
//!
//! Stand-in for HDFS in the PIC reproduction. The paper's second bottleneck
//! is *model updates*: "the model is stored in the cluster file system with
//! replicas (for fault tolerance), hence the performance impact of frequent
//! model updates is significant" (§II). To charge that cost faithfully we
//! model exactly the parts of HDFS that matter to it:
//!
//! * a flat namespace of files made of fixed-size **blocks**;
//! * **replica placement** following the HDFS default policy (first replica
//!   on the writer's node, second on a different node in the same rack,
//!   third in a different rack), deterministic per path;
//! * byte-exact **traffic accounting** into a shared
//!   [`pic_simnet::TrafficLedger`] (writes cost `replication ×` bytes of
//!   which `replication − 1` cross the network; reads are free when
//!   node-local);
//! * **input splits** with replica host lists, which the MapReduce engine
//!   feeds to the slot scheduler for locality-aware placement.
//!
//! File *contents* are not stored — application data lives in typed memory
//! inside the engine. The DFS tracks sizes and placement, which is all the
//! time/traffic models need.

#![warn(missing_docs)]

pub mod namespace;
pub mod placement;
pub mod split;

pub use namespace::{Dfs, DfsError, FileMeta};
pub use placement::BlockPlacement;
pub use split::InputSplit;

/// Default HDFS block size of the Hadoop 0.20 era: 64 MiB.
pub const DEFAULT_BLOCK_SIZE: u64 = 64 * 1024 * 1024;
