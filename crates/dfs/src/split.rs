//! Input splits.
//!
//! A MapReduce job consumes a file as a list of *splits*, one per map task.
//! Each split carries the replica hosts of the block it falls in, which is
//! what gives the scheduler its locality information.

use pic_simnet::topology::NodeId;
use serde::{Deserialize, Serialize};

/// One map task's slice of an input file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputSplit {
    /// Byte offset within the file.
    pub offset: u64,
    /// Byte length of the split.
    pub len: u64,
    /// Nodes holding a replica of the block containing this split.
    pub hosts: Vec<NodeId>,
}

impl InputSplit {
    /// Exclusive end offset.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// Divide `file_len` bytes into `n` near-equal contiguous ranges. The first
/// `file_len % n` ranges get one extra byte, so all of the file is covered
/// and no range is empty unless `file_len < n`.
pub fn even_ranges(file_len: u64, n: usize) -> Vec<(u64, u64)> {
    assert!(n > 0, "cannot split into zero ranges");
    let n64 = n as u64;
    let base = file_len / n64;
    let rem = file_len % n64;
    let mut out = Vec::with_capacity(n);
    let mut off = 0u64;
    for i in 0..n64 {
        let len = base + u64::from(i < rem);
        out.push((off, len));
        off += len;
    }
    debug_assert_eq!(off, file_len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_exactly() {
        for (len, n) in [(100u64, 7usize), (64, 64), (5, 10), (0, 3), (1 << 30, 13)] {
            let rs = even_ranges(len, n);
            assert_eq!(rs.len(), n);
            let mut off = 0;
            for (o, l) in &rs {
                assert_eq!(*o, off);
                off += l;
            }
            assert_eq!(off, len);
        }
    }

    #[test]
    fn ranges_are_balanced() {
        let rs = even_ranges(1003, 10);
        let min = rs.iter().map(|(_, l)| *l).min().unwrap();
        let max = rs.iter().map(|(_, l)| *l).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn split_end() {
        let s = InputSplit {
            offset: 10,
            len: 5,
            hosts: vec![1],
        };
        assert_eq!(s.end(), 15);
    }
}
