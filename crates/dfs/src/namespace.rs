//! The DFS namespace: files, blocks, reads, writes, and their cost.

use crate::placement::BlockPlacement;
use crate::split::{even_ranges, InputSplit};
use crate::DEFAULT_BLOCK_SIZE;
use parking_lot::RwLock;
use pic_simnet::chaos::ChaosInjector;
use pic_simnet::hostprof::{self, Stage};
use pic_simnet::topology::{ClusterSpec, NodeId};
use pic_simnet::trace::{Payload, Tracer};
use pic_simnet::traffic::{TrafficClass, TrafficLedger};
use pic_simnet::transfer;
use std::collections::HashMap;
use std::sync::Arc;

/// Errors from namespace operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// The path does not exist.
    NotFound(String),
    /// The path already exists (writes never overwrite implicitly).
    AlreadyExists(String),
}

impl std::fmt::Display for DfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfsError::NotFound(p) => write!(f, "dfs: path not found: {p}"),
            DfsError::AlreadyExists(p) => write!(f, "dfs: path already exists: {p}"),
        }
    }
}

impl std::error::Error for DfsError {}

/// Metadata for one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Logical size in bytes.
    pub size: u64,
    /// Per-block replica locations, in block order.
    pub blocks: Vec<Vec<NodeId>>,
}

/// The simulated file system. Cheap to clone handles around the engine:
/// state is behind an `Arc<RwLock>`.
#[derive(Debug, Clone)]
pub struct Dfs {
    spec: Arc<ClusterSpec>,
    ledger: Arc<TrafficLedger>,
    block_size: u64,
    placement: BlockPlacement,
    files: Arc<RwLock<HashMap<String, FileMeta>>>,
    tracer: Tracer,
    chaos: ChaosInjector,
}

impl Dfs {
    /// A DFS over `spec`, accounting into `ledger`, with the default 64 MiB
    /// block size and placement seed 0.
    pub fn new(spec: Arc<ClusterSpec>, ledger: Arc<TrafficLedger>) -> Self {
        Self::with_block_size(spec, ledger, DEFAULT_BLOCK_SIZE, 0)
    }

    /// A DFS with explicit block size and placement seed.
    ///
    /// # Panics
    /// Panics if `block_size == 0`.
    pub fn with_block_size(
        spec: Arc<ClusterSpec>,
        ledger: Arc<TrafficLedger>,
        block_size: u64,
        seed: u64,
    ) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Dfs {
            spec,
            ledger,
            block_size,
            placement: BlockPlacement::new(seed),
            files: Arc::new(RwLock::new(HashMap::new())),
            tracer: Tracer::disabled(),
            chaos: ChaosInjector::idle(),
        }
    }

    /// The same DFS with `tracer` attached: every write emits a
    /// `dfs-write` instant event (path, logical bytes, replicated bytes)
    /// keyed to simulated time.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The same DFS consulting `chaos` for link-degradation windows
    /// (writes and remote reads started inside a window take its factor
    /// longer). The handle is shared, so a plan armed later is seen here
    /// too.
    pub fn with_chaos(mut self, chaos: ChaosInjector) -> Self {
        self.chaos = chaos;
        self
    }

    /// The cluster this DFS runs on.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The shared traffic ledger.
    pub fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    /// Create `path` with `bytes` of content written from `writer`,
    /// charged to traffic class `class` (use [`TrafficClass::DfsWrite`] for
    /// job output, [`TrafficClass::ModelUpdate`] for model writes —
    /// distinguishing them is how Table II gets its two rows). Returns the
    /// simulated seconds the write pipeline takes.
    pub fn create(
        &self,
        path: &str,
        bytes: u64,
        writer: NodeId,
        class: TrafficClass,
    ) -> Result<f64, DfsError> {
        let _hp = hostprof::scope_bytes(Stage::DfsSerialization, bytes);
        {
            let files = self.files.read();
            if files.contains_key(path) {
                return Err(DfsError::AlreadyExists(path.to_string()));
            }
        }
        let n_blocks = bytes.div_ceil(self.block_size).max(1);
        let mut blocks = Vec::with_capacity(n_blocks as usize);
        for b in 0..n_blocks {
            blocks.push(self.placement.place(&self.spec, path, b, writer));
        }
        // Traffic: every byte is written replication× (1 local + the rest
        // over the network, HDFS pipeline). The ledger class receives the
        // *full* replicated volume, matching how Hadoop counters report
        // "bytes written".
        let copies = self.spec.replication.min(self.spec.nodes) as u64;
        let (mut secs, _net) = transfer::dfs_write(&self.spec, bytes);
        let t0 = self.tracer.now();
        secs *= self.chaos.degradation_factor(t0);
        self.ledger.add_over(class, bytes * copies, t0, t0 + secs);
        self.tracer.instant(
            "write",
            "dfs",
            vec![
                ("path".to_string(), Payload::Str(path.to_string())),
                ("bytes".to_string(), Payload::U64(bytes)),
                ("replicated_bytes".to_string(), Payload::U64(bytes * copies)),
                ("class".to_string(), Payload::Str(class.label().to_string())),
            ],
        );
        self.files.write().insert(
            path.to_string(),
            FileMeta {
                size: bytes,
                blocks,
            },
        );
        Ok(secs)
    }

    /// Replace `path` (delete + create). Model files are overwritten every
    /// iteration, so this is the common write path for drivers.
    pub fn overwrite(&self, path: &str, bytes: u64, writer: NodeId, class: TrafficClass) -> f64 {
        self.files.write().remove(path);
        self.create(path, bytes, writer, class)
            .expect("create after remove cannot collide")
    }

    /// Read the whole of `path` from `reader`. Node-local replicas cost
    /// disk time only; otherwise the read crosses the network and is
    /// charged to [`TrafficClass::DfsRead`]. Returns simulated seconds.
    pub fn read(&self, path: &str, reader: NodeId) -> Result<f64, DfsError> {
        let mut _hp = hostprof::scope(Stage::DfsDeserialization);
        let files = self.files.read();
        let meta = files
            .get(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
        _hp.add_bytes(meta.size);
        let mut secs = 0.0;
        let mut remaining = meta.size;
        for replicas in &meta.blocks {
            let blk = remaining.min(self.block_size);
            remaining -= blk;
            if replicas.contains(&reader) {
                secs += transfer::local_disk_s(&self.spec, blk);
            } else {
                let src = replicas.first().copied().unwrap_or(reader);
                // Blocks stream back to back, so block `i`'s transfer
                // occupies the window right after its predecessors'.
                let t0 = self.tracer.now() + secs;
                let blk_s = transfer::point_to_point_s(&self.spec, src, reader, blk)
                    * self.chaos.degradation_factor(t0);
                self.ledger
                    .add_over(TrafficClass::DfsRead, blk, t0, t0 + blk_s);
                secs += blk_s;
            }
        }
        Ok(secs)
    }

    /// Logical size of `path`.
    pub fn len(&self, path: &str) -> Result<u64, DfsError> {
        self.files
            .read()
            .get(path)
            .map(|m| m.size)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))
    }

    /// True if `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// Remove `path`; `Ok` even if it did not exist is deliberate (HDFS
    /// `delete` semantics with `recursive=false` on a file).
    pub fn delete(&self, path: &str) {
        self.files.write().remove(path);
    }

    /// Number of files in the namespace.
    pub fn file_count(&self) -> usize {
        self.files.read().len()
    }

    /// Compute `n` input splits for `path`, each annotated with the hosts
    /// of the block its midpoint falls in.
    pub fn splits(&self, path: &str, n: usize) -> Result<Vec<InputSplit>, DfsError> {
        let files = self.files.read();
        let meta = files
            .get(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
        let ranges = even_ranges(meta.size, n);
        Ok(ranges
            .into_iter()
            .map(|(offset, len)| {
                let mid = offset + len / 2;
                let block = (mid / self.block_size) as usize;
                let hosts = meta
                    .blocks
                    .get(block.min(meta.blocks.len().saturating_sub(1)))
                    .cloned()
                    .unwrap_or_default();
                InputSplit { offset, len, hosts }
            })
            .collect())
    }

    /// React to `node` crashing at simulated time `at_s`: every block
    /// replica it held is re-replicated onto the lowest-numbered live
    /// node not already holding the block (HDFS re-replication). The
    /// copied bytes are charged to [`TrafficClass::Recovery`] over a
    /// pipeline window starting at `at_s`; like the real thing this runs
    /// in the background, so no simulated time is returned for the
    /// caller to block on. Returns the bytes re-replicated. `dead` lists
    /// every node dead at `at_s` (including `node`) so replacements are
    /// not placed on other casualties.
    pub fn rereplicate_after_crash(&self, node: NodeId, at_s: f64, dead: &[NodeId]) -> u64 {
        let mut moved = 0u64;
        let mut files = self.files.write();
        for meta in files.values_mut() {
            let mut remaining = meta.size;
            for replicas in &mut meta.blocks {
                let blk = remaining.min(self.block_size);
                remaining -= blk;
                let Some(pos) = replicas.iter().position(|&r| r == node) else {
                    continue;
                };
                let replacement =
                    (0..self.spec.nodes).find(|n| !dead.contains(n) && !replicas.contains(n));
                match replacement {
                    Some(n) => replicas[pos] = n,
                    None => {
                        replicas.swap_remove(pos);
                        continue; // no live node to copy to: replica lost
                    }
                }
                moved += blk;
            }
        }
        drop(files);
        if moved > 0 {
            let secs = transfer::dfs_write(&self.spec, moved).0;
            self.ledger
                .add_over(TrafficClass::Recovery, moved, at_s, at_s + secs);
        }
        // Stamped at the crash time, not the emission clock: the engine
        // assembles jobs with the clock parked at the job start, and this
        // fires while a later phase span is open.
        self.tracer.instant_at(
            "re-replicate",
            "dfs",
            at_s,
            vec![
                ("node".to_string(), Payload::U64(node as u64)),
                ("bytes".to_string(), Payload::U64(moved)),
                ("at_s".to_string(), Payload::F64(at_s)),
            ],
        );
        moved
    }

    /// Full metadata for `path` (used by tests and reports).
    pub fn stat(&self, path: &str) -> Result<FileMeta, DfsError> {
        self.files
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| DfsError::NotFound(path.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(spec: ClusterSpec) -> (Dfs, Arc<TrafficLedger>) {
        let ledger = Arc::new(TrafficLedger::new());
        (Dfs::new(Arc::new(spec), Arc::clone(&ledger)), ledger)
    }

    #[test]
    fn create_read_roundtrip() {
        let (dfs, _l) = mk(ClusterSpec::small());
        let secs = dfs
            .create("/in/points", 1_000_000, 0, TrafficClass::DfsWrite)
            .unwrap();
        assert!(secs > 0.0);
        assert!(dfs.exists("/in/points"));
        assert_eq!(dfs.len("/in/points").unwrap(), 1_000_000);
        let rsecs = dfs.read("/in/points", 0).unwrap();
        assert!(rsecs > 0.0);
    }

    #[test]
    fn duplicate_create_rejected() {
        let (dfs, _l) = mk(ClusterSpec::small());
        dfs.create("/f", 10, 0, TrafficClass::DfsWrite).unwrap();
        assert_eq!(
            dfs.create("/f", 10, 0, TrafficClass::DfsWrite),
            Err(DfsError::AlreadyExists("/f".into()))
        );
    }

    #[test]
    fn missing_read_errors() {
        let (dfs, _l) = mk(ClusterSpec::small());
        assert!(matches!(dfs.read("/nope", 0), Err(DfsError::NotFound(_))));
    }

    #[test]
    fn write_charges_replicated_bytes() {
        let (dfs, l) = mk(ClusterSpec::small()); // replication 3
        dfs.create("/f", 1000, 0, TrafficClass::DfsWrite).unwrap();
        assert_eq!(l.get(TrafficClass::DfsWrite), 3000);
    }

    #[test]
    fn model_write_charges_model_class() {
        let (dfs, l) = mk(ClusterSpec::small());
        dfs.create("/model", 500, 2, TrafficClass::ModelUpdate)
            .unwrap();
        assert_eq!(l.get(TrafficClass::ModelUpdate), 1500);
        assert_eq!(l.get(TrafficClass::DfsWrite), 0);
    }

    #[test]
    fn local_read_is_free_of_network() {
        let (dfs, l) = mk(ClusterSpec::small());
        dfs.create("/f", 1000, 3, TrafficClass::DfsWrite).unwrap();
        // Node 3 holds the first replica of every block.
        dfs.read("/f", 3).unwrap();
        assert_eq!(l.get(TrafficClass::DfsRead), 0);
    }

    #[test]
    fn remote_read_charges_network() {
        let (dfs, l) = mk(ClusterSpec::small());
        dfs.create("/f", 1000, 0, TrafficClass::DfsWrite).unwrap();
        // Find a node holding no replica of block 0.
        let meta = dfs.stat("/f").unwrap();
        let holder: Vec<NodeId> = meta.blocks[0].clone();
        let outsider = (0..6).find(|n| !holder.contains(n)).unwrap();
        dfs.read("/f", outsider).unwrap();
        assert_eq!(l.get(TrafficClass::DfsRead), 1000);
    }

    #[test]
    fn overwrite_replaces() {
        let (dfs, _l) = mk(ClusterSpec::small());
        dfs.create("/m", 100, 0, TrafficClass::ModelUpdate).unwrap();
        dfs.overwrite("/m", 250, 1, TrafficClass::ModelUpdate);
        assert_eq!(dfs.len("/m").unwrap(), 250);
    }

    #[test]
    fn multi_block_files_place_every_block() {
        let ledger = Arc::new(TrafficLedger::new());
        let dfs = Dfs::with_block_size(
            Arc::new(ClusterSpec::medium()),
            ledger,
            1024, // tiny blocks to force many
            7,
        );
        dfs.create("/big", 10_000, 0, TrafficClass::DfsWrite)
            .unwrap();
        let meta = dfs.stat("/big").unwrap();
        assert_eq!(meta.blocks.len(), 10);
        for b in &meta.blocks {
            assert_eq!(b.len(), 3);
        }
    }

    #[test]
    fn splits_cover_file_and_carry_hosts() {
        let (dfs, _l) = mk(ClusterSpec::medium());
        dfs.create("/in", 1_000_000, 5, TrafficClass::DfsWrite)
            .unwrap();
        let splits = dfs.splits("/in", 8).unwrap();
        assert_eq!(splits.len(), 8);
        let total: u64 = splits.iter().map(|s| s.len).sum();
        assert_eq!(total, 1_000_000);
        for s in &splits {
            assert!(!s.hosts.is_empty());
        }
    }

    #[test]
    fn empty_file_still_has_one_block() {
        let (dfs, _l) = mk(ClusterSpec::small());
        dfs.create("/empty", 0, 0, TrafficClass::DfsWrite).unwrap();
        let meta = dfs.stat("/empty").unwrap();
        assert_eq!(meta.blocks.len(), 1);
        assert_eq!(dfs.read("/empty", 1).unwrap(), 0.0);
    }

    #[test]
    fn rereplication_restores_copies_and_charges_recovery() {
        let (dfs, l) = mk(ClusterSpec::small()); // replication 3
        dfs.create("/f", 1000, 0, TrafficClass::DfsWrite).unwrap();
        let before = dfs.stat("/f").unwrap();
        let victim = before.blocks[0][0];
        let moved = dfs.rereplicate_after_crash(victim, 5.0, &[victim]);
        assert_eq!(moved, 1000, "the lost replica is copied in full");
        assert_eq!(l.get(TrafficClass::Recovery), 1000);
        let after = dfs.stat("/f").unwrap();
        assert_eq!(after.blocks[0].len(), 3, "replication restored");
        assert!(!after.blocks[0].contains(&victim));
    }

    #[test]
    fn rereplication_skips_nodes_without_replicas() {
        let (dfs, l) = mk(ClusterSpec::small());
        dfs.create("/f", 1000, 0, TrafficClass::DfsWrite).unwrap();
        let holders = dfs.stat("/f").unwrap().blocks[0].clone();
        let outsider = (0..6).find(|n| !holders.contains(n)).unwrap();
        assert_eq!(dfs.rereplicate_after_crash(outsider, 1.0, &[outsider]), 0);
        assert_eq!(l.get(TrafficClass::Recovery), 0);
    }

    #[test]
    fn degradation_stretches_writes_but_not_bytes() {
        use pic_simnet::chaos::{ChaosInjector, FaultPlan};
        use pic_simnet::trace::Tracer;

        let spec = ClusterSpec::small();
        let ledger = Arc::new(TrafficLedger::new());
        let chaos = ChaosInjector::idle();
        chaos
            .arm(
                &FaultPlan::new(0).degrade_links(4.0, 0.0, 1e9),
                &spec,
                Tracer::disabled(),
            )
            .unwrap();
        let clean = mk(ClusterSpec::small()).0;
        let slow = Dfs::new(Arc::new(spec), Arc::clone(&ledger)).with_chaos(chaos);
        let s_clean = clean
            .create("/f", 1_000_000, 0, TrafficClass::DfsWrite)
            .unwrap();
        let s_slow = slow
            .create("/f", 1_000_000, 0, TrafficClass::DfsWrite)
            .unwrap();
        assert!(
            (s_slow - s_clean * 4.0).abs() < 1e-9,
            "{s_slow} vs {s_clean}"
        );
        assert_eq!(
            ledger.get(TrafficClass::DfsWrite),
            3_000_000,
            "bytes unchanged"
        );
    }

    #[test]
    fn delete_then_exists_false() {
        let (dfs, _l) = mk(ClusterSpec::small());
        dfs.create("/f", 10, 0, TrafficClass::DfsWrite).unwrap();
        dfs.delete("/f");
        assert!(!dfs.exists("/f"));
        dfs.delete("/f"); // idempotent
    }
}
