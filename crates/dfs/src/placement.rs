//! HDFS-style replica placement.
//!
//! The default HDFS policy (the one Hadoop 0.20 shipped): first replica on
//! the writer's node, second replica on a different node in a *different*
//! rack, third replica on another node in that same remote rack; extra
//! replicas spread randomly. On a single-rack cluster everything degrades
//! to "distinct nodes". Placement is derived from a seed hashed with the
//! path and block index so that the same logical write always places the
//! same way — experiments stay reproducible.

use pic_simnet::topology::{ClusterSpec, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Chooses replica nodes for blocks.
#[derive(Debug, Clone)]
pub struct BlockPlacement {
    seed: u64,
}

impl BlockPlacement {
    /// A placement policy with the given determinism seed.
    pub fn new(seed: u64) -> Self {
        BlockPlacement { seed }
    }

    /// Replica nodes for block `block_idx` of `path`, written from
    /// `writer`. Returns `min(replication, nodes)` distinct nodes, the
    /// first being `writer`.
    pub fn place(
        &self,
        spec: &ClusterSpec,
        path: &str,
        block_idx: u64,
        writer: NodeId,
    ) -> Vec<NodeId> {
        assert!(writer < spec.nodes, "writer node out of range");
        let replicas = spec.replication.min(spec.nodes);
        let mut out = Vec::with_capacity(replicas);
        out.push(writer);
        if replicas == 1 {
            return out;
        }

        let mut rng = self.rng_for(path, block_idx);
        let writer_rack = spec.rack_of(writer);

        // Second replica: prefer a different rack.
        let remote_rack = if spec.racks > 1 {
            // Pick any rack other than the writer's.
            let mut r = rng.gen_range(0..spec.racks - 1);
            if r >= writer_rack {
                r += 1;
            }
            r
        } else {
            writer_rack
        };
        let mut remote_nodes: Vec<NodeId> = spec
            .nodes_in_rack(remote_rack)
            .filter(|&n| n != writer)
            .collect();
        remote_nodes.shuffle(&mut rng);

        for &n in remote_nodes.iter().take(2) {
            if out.len() < replicas {
                out.push(n);
            }
        }

        // Any further replicas: random distinct nodes.
        if out.len() < replicas {
            let mut rest: Vec<NodeId> = (0..spec.nodes).filter(|n| !out.contains(n)).collect();
            rest.shuffle(&mut rng);
            for n in rest {
                if out.len() == replicas {
                    break;
                }
                out.push(n);
            }
        }
        out
    }

    fn rng_for(&self, path: &str, block_idx: u64) -> StdRng {
        let mut h = DefaultHasher::new();
        self.seed.hash(&mut h);
        path.hash(&mut h);
        block_idx.hash(&mut h);
        StdRng::seed_from_u64(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_replica_is_writer_local() {
        let spec = ClusterSpec::medium();
        let p = BlockPlacement::new(42);
        for writer in [0, 13, 63] {
            let r = p.place(&spec, "/data/x", 0, writer);
            assert_eq!(r[0], writer);
        }
    }

    #[test]
    fn replicas_are_distinct() {
        let spec = ClusterSpec::medium();
        let p = BlockPlacement::new(7);
        for b in 0..50 {
            let r = p.place(&spec, "/f", b, 5);
            let mut sorted = r.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), r.len(), "duplicate replica in {r:?}");
            assert_eq!(r.len(), 3);
        }
    }

    #[test]
    fn second_replica_leaves_the_rack_when_possible() {
        let spec = ClusterSpec::medium(); // 6 racks
        let p = BlockPlacement::new(1);
        for b in 0..20 {
            let r = p.place(&spec, "/f", b, 0);
            assert_ne!(
                spec.rack_of(r[1]),
                spec.rack_of(0),
                "replica 2 should be off-rack: {r:?}"
            );
        }
    }

    #[test]
    fn single_rack_cluster_still_places_distinct_nodes() {
        let spec = ClusterSpec::small(); // 1 rack, 6 nodes, replication 3
        let p = BlockPlacement::new(3);
        let r = p.place(&spec, "/f", 0, 2);
        assert_eq!(r.len(), 3);
        let mut s = r.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn replication_capped_by_cluster_size() {
        let spec = ClusterSpec::single(); // 1 node, replication 1
        let p = BlockPlacement::new(0);
        let r = p.place(&spec, "/f", 0, 0);
        assert_eq!(r, vec![0]);
    }

    #[test]
    fn placement_is_deterministic_per_path_and_block() {
        let spec = ClusterSpec::medium();
        let p = BlockPlacement::new(99);
        let a = p.place(&spec, "/model/v1", 3, 10);
        let b = p.place(&spec, "/model/v1", 3, 10);
        assert_eq!(a, b);
        let c = p.place(&spec, "/model/v2", 3, 10);
        // Different path may (and with high probability does) differ beyond
        // the writer-local first replica.
        assert_eq!(c[0], 10);
    }
}
