//! Property-based tests for DFS placement and splitting.

use pic_dfs::placement::BlockPlacement;
use pic_dfs::split::even_ranges;
use pic_dfs::Dfs;
use pic_simnet::traffic::{TrafficClass, TrafficLedger};
use pic_simnet::ClusterSpec;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replicas are always distinct nodes, the first is the writer, and
    /// the count is min(replication, cluster size).
    #[test]
    fn replicas_distinct_and_writer_first(
        writer in 0usize..64,
        block in 0u64..1000,
        seed in any::<u64>(),
    ) {
        let spec = ClusterSpec::medium();
        let p = BlockPlacement::new(seed);
        let r = p.place(&spec, "/prop/file", block, writer % spec.nodes);
        prop_assert_eq!(r[0], writer % spec.nodes);
        prop_assert_eq!(r.len(), spec.replication.min(spec.nodes));
        let mut sorted = r.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), r.len());
    }

    /// Even ranges always cover the file exactly, in order, balanced to
    /// within one byte.
    #[test]
    fn even_ranges_cover(file_len in 0u64..10_000_000, n in 1usize..64) {
        let rs = even_ranges(file_len, n);
        prop_assert_eq!(rs.len(), n);
        let mut off = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        for (o, l) in &rs {
            prop_assert_eq!(*o, off);
            off += l;
            min = min.min(*l);
            max = max.max(*l);
        }
        prop_assert_eq!(off, file_len);
        prop_assert!(max - min <= 1);
    }

    /// Writes always charge replication × bytes to the requested class,
    /// and splits of the file cover it with non-empty host lists.
    #[test]
    fn write_accounting_and_splits(
        bytes in 1u64..50_000_000,
        writer in 0usize..6,
        n_splits in 1usize..32,
    ) {
        let spec = ClusterSpec::small();
        let ledger = Arc::new(TrafficLedger::new());
        let dfs = Dfs::new(Arc::new(spec), Arc::clone(&ledger));
        dfs.create("/prop/w", bytes, writer, TrafficClass::ModelUpdate).unwrap();
        prop_assert_eq!(ledger.get(TrafficClass::ModelUpdate), bytes * 3);
        let splits = dfs.splits("/prop/w", n_splits).unwrap();
        prop_assert_eq!(splits.len(), n_splits);
        let total: u64 = splits.iter().map(|s| s.len).sum();
        prop_assert_eq!(total, bytes);
        for s in &splits {
            prop_assert!(!s.hosts.is_empty());
        }
    }

    /// Reading never charges more network bytes than the file size, and a
    /// reader holding every block's first replica is free.
    #[test]
    fn read_accounting_bounded(bytes in 1u64..10_000_000, reader in 0usize..6) {
        let spec = ClusterSpec::small();
        let ledger = Arc::new(TrafficLedger::new());
        let dfs = Dfs::new(Arc::new(spec), Arc::clone(&ledger));
        dfs.create("/prop/r", bytes, reader, TrafficClass::DfsWrite).unwrap();
        let before = ledger.get(TrafficClass::DfsRead);
        // The writer holds the first replica of every block: local read.
        dfs.read("/prop/r", reader).unwrap();
        prop_assert_eq!(ledger.get(TrafficClass::DfsRead), before);
        // Any other reader pays at most the file size.
        let other = (reader + 1) % 6;
        dfs.read("/prop/r", other).unwrap();
        prop_assert!(ledger.get(TrafficClass::DfsRead) <= bytes);
    }
}
