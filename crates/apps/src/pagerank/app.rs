//! The PageRank [`IterativeApp`] / [`PicApp`] implementation.

use super::graph::{VertexRec, WebGraph};
use super::mr::{AggMapper, PrModel, PropagateMapper, RankReducer, ScoreSumCombiner};
use pic_core::prelude::*;
use pic_mapreduce::{Dataset, Engine};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// How vertices are assigned to PIC sub-graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionMode {
    /// Uniformly random vertex groups — what the paper's evaluation used
    /// ("our partitioning function randomly divides the web graph into 18
    /// partitions").
    #[default]
    Random,
    /// Contiguous id blocks — exploits the generator's block locality.
    Block,
    /// Greedy BFS growth (the METIS stand-in the paper's §VI.B alludes
    /// to: "by properly partitioning it ... the connectivity matrix of
    /// the graph becomes nearly uncoupled").
    Bfs,
}

/// Per-partition structure precomputed at construction.
struct PartInfo {
    /// Global vertex ids of this partition, in local order.
    vertices: Vec<u32>,
    /// Internal edges as `(local src, local dst, global CSR index)`.
    internal_edges: Vec<(u32, u32, u64)>,
}

/// PageRank over a fixed web graph with a fixed sub-graph partitioning.
///
/// The graph and the partition structure live in the app (they are static
/// "problem shape", not model), mirroring how the paper's PIC library lets
/// `partition`/`merge` capture problem-specific structure like the `18² =
/// 324` cross-edge sets of its Wikipedia experiment.
pub struct PageRankApp {
    graph: Arc<WebGraph>,
    offsets: Vec<u64>,
    /// Damping factor `c` (paper: 0.85).
    pub damping: f64,
    /// Fixed IC iteration count (Nutch default: 10).
    pub iterations: usize,
    /// Fixed local-iteration count per best-effort iteration.
    pub local_iterations: usize,
    /// Fixed best-effort iteration count.
    pub be_iterations: usize,
    /// Fixed top-off iteration count (the preset budget the refined
    /// starting model needs; the conventional run uses `iterations`).
    pub topoff_iterations: usize,
    parts: usize,
    part_of: Vec<u32>,
    part_info: Vec<PartInfo>,
    /// Cross-partition edges as `(src, dst, global CSR index)`.
    cross_edges: Vec<(u32, u32, u64)>,
    /// Reference ranks for the error metric (`None` disables it).
    pub reference: Option<Vec<f64>>,
}

impl PageRankApp {
    /// Build the app over `graph` with `parts` sub-graphs chosen by `mode`.
    pub fn new(graph: WebGraph, parts: usize, mode: PartitionMode, seed: u64) -> Self {
        assert!(parts > 0, "need at least one partition");
        let n = graph.n();
        let offsets = graph.csr_offsets();

        let part_of: Vec<u32> = match mode {
            PartitionMode::Random => {
                let mut ids: Vec<u32> = (0..n as u32).collect();
                ids.shuffle(&mut StdRng::seed_from_u64(seed));
                let mut part_of = vec![0u32; n];
                for (i, &v) in ids.iter().enumerate() {
                    part_of[v as usize] = (i % parts) as u32;
                }
                part_of
            }
            PartitionMode::Block => (0..n).map(|v| ((v * parts) / n) as u32).collect(),
            PartitionMode::Bfs => partition::bfs_graph(&graph.adjacency(), parts, seed)
                .into_iter()
                .map(|p| p as u32)
                .collect(),
        };

        // Local index of each vertex within its partition.
        let mut local_index = vec![0u32; n];
        let mut part_vertices: Vec<Vec<u32>> = vec![Vec::new(); parts];
        for v in 0..n {
            let p = part_of[v] as usize;
            local_index[v] = part_vertices[p].len() as u32;
            part_vertices[p].push(v as u32);
        }

        let mut part_info: Vec<PartInfo> = part_vertices
            .into_iter()
            .map(|vertices| PartInfo {
                vertices,
                internal_edges: Vec::new(),
            })
            .collect();
        let mut cross_edges = Vec::new();
        for (v, outs) in graph.out.iter().enumerate() {
            let pv = part_of[v] as usize;
            let base = offsets[v];
            for (i, &u) in outs.iter().enumerate() {
                let ge = base + i as u64;
                if part_of[u as usize] as usize == pv {
                    part_info[pv].internal_edges.push((
                        local_index[v],
                        local_index[u as usize],
                        ge,
                    ));
                } else {
                    cross_edges.push((v as u32, u, ge));
                }
            }
        }

        PageRankApp {
            graph: Arc::new(graph),
            offsets,
            damping: 0.85,
            iterations: 10,
            local_iterations: 10,
            be_iterations: 3,
            topoff_iterations: 3,
            parts,
            part_of,
            part_info,
            cross_edges,
            reference: None,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &WebGraph {
        &self.graph
    }

    /// Number of cross-partition edges (the paper reports `18² = 324`
    /// cross-edge *sets*; the set count here is at most `parts²`).
    pub fn cross_edge_count(&self) -> usize {
        self.cross_edges.len()
    }

    /// Fraction of edges that cross partitions — the "coupling" the
    /// paper's §VI.B wants partitioning to minimize.
    pub fn cut_fraction(&self) -> f64 {
        self.cross_edges.len() as f64 / self.graph.m().max(1) as f64
    }

    /// The uniform starting model.
    pub fn initial_model(&self) -> PrModel {
        PrModel::uniform(self.graph.n(), self.graph.out.iter().map(Vec::len))
    }

    /// Sequential reference: `iters` full PageRank iterations. Used both
    /// for the error metric and in tests as ground truth for the MR path.
    pub fn solve_reference(&self, iters: usize) -> Vec<f64> {
        let mut model = self.initial_model();
        for _ in 0..iters {
            model = self.sequential_step(&model);
        }
        model.ranks
    }

    /// One full sequential aggregation + propagation step.
    pub fn sequential_step(&self, model: &PrModel) -> PrModel {
        let n = self.graph.n();
        let mut sums = vec![0.0; n];
        for (v, outs) in self.graph.out.iter().enumerate() {
            let base = self.offsets[v];
            for (i, &u) in outs.iter().enumerate() {
                sums[u as usize] += model.edge_scores[base as usize + i];
            }
        }
        let ranks: Vec<f64> = sums
            .iter()
            .map(|s| (1.0 - self.damping) + self.damping * s)
            .collect();
        let mut edge_scores = vec![0.0; self.graph.m()];
        for (v, outs) in self.graph.out.iter().enumerate() {
            if outs.is_empty() {
                continue;
            }
            let s = ranks[v] / outs.len() as f64;
            let base = self.offsets[v] as usize;
            for e in edge_scores.iter_mut().skip(base).take(outs.len()) {
                *e = s;
            }
        }
        PrModel { ranks, edge_scores }
    }

    /// Attach reference ranks for error trajectories.
    pub fn with_reference(mut self, ranks: Vec<f64>) -> Self {
        self.reference = Some(ranks);
        self
    }
}

impl IterativeApp for PageRankApp {
    type Record = VertexRec;
    type Model = PrModel;

    fn name(&self) -> &str {
        "pagerank"
    }

    fn iterate(
        &self,
        engine: &Engine,
        data: &Dataset<VertexRec>,
        model: &PrModel,
        scope: &IterScope,
    ) -> PrModel {
        // Phase 1: aggregation (full MapReduce job; shuffle = one record
        // per edge).
        let agg = engine.run_with_combiner(
            &scope.job("aggregate"),
            data,
            &AggMapper {
                model,
                offsets: &self.offsets,
            },
            &ScoreSumCombiner,
            &RankReducer {
                damping: self.damping,
            },
        );
        // Vertices with no in-edges receive no reducer output: their rank
        // is the damping floor.
        let mut ranks = vec![1.0 - self.damping; self.graph.n()];
        for (v, r) in agg.output {
            ranks[v as usize] = r;
        }

        // Phase 2: propagation (map-only job).
        let prop = engine.run_map_only(
            &scope.job("propagate"),
            data,
            &PropagateMapper {
                ranks: &ranks,
                offsets: &self.offsets,
            },
        );
        let mut edge_scores = vec![0.0; self.graph.m()];
        for (e, s) in prop.output {
            edge_scores[e as usize] = s;
        }

        PrModel { ranks, edge_scores }
    }

    fn converged(&self, _prev: &PrModel, _next: &PrModel) -> bool {
        // Nutch semantics: run a fixed number of iterations.
        false
    }

    fn error(&self, model: &PrModel) -> Option<f64> {
        self.reference.as_ref().map(|r| {
            model
                .ranks
                .iter()
                .zip(r)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / r.len() as f64
        })
    }

    fn max_iterations(&self) -> usize {
        self.iterations
    }

    fn model_fanout(&self) -> pic_core::app::ModelFanout {
        // Each aggregation mapper needs only its vertices' edge scores.
        pic_core::app::ModelFanout::Partitioned
    }
}

impl QualityProbe for PageRankApp {
    /// The L1 residual of one full PageRank step, `‖P(r) − r‖₁` — the
    /// distance from the power iteration's fixed point, which needs no
    /// reference solution to compute.
    fn quality(&self, model: &PrModel) -> QualitySample {
        let next = self.sequential_step(model);
        let l1: f64 = next
            .ranks
            .iter()
            .zip(&model.ranks)
            .map(|(a, b)| (a - b).abs())
            .sum();
        QualitySample {
            objective: self.error(model),
            indices: vec![("l1_residual", l1)],
        }
    }
}

impl PicApp for PageRankApp {
    fn partition_data(&self, data: &Dataset<VertexRec>, parts: usize) -> Vec<Vec<VertexRec>> {
        assert_eq!(
            parts, self.parts,
            "PicOptions.partitions must match the app's partition count"
        );
        let mut out: Vec<Vec<VertexRec>> = (0..parts).map(|_| Vec::new()).collect();
        for rec in data.iter_records() {
            out[self.part_of[rec.id as usize] as usize].push(rec.clone());
        }
        out
    }

    fn split_model(&self, model: &PrModel, parts: usize) -> Vec<PrModel> {
        assert_eq!(parts, self.parts, "partition count mismatch");
        self.part_info
            .iter()
            .map(|info| PrModel {
                ranks: info
                    .vertices
                    .iter()
                    .map(|&v| model.ranks[v as usize])
                    .collect(),
                edge_scores: info
                    .internal_edges
                    .iter()
                    .map(|&(_, _, ge)| model.edge_scores[ge as usize])
                    .collect(),
            })
            .collect()
    }

    fn merge(&self, subs: &[PrModel], prev: &PrModel) -> PrModel {
        assert_eq!(subs.len(), self.parts, "partition count mismatch");
        // 1. Piece the disjoint rank/internal-score blocks back together.
        let mut ranks = vec![0.0; self.graph.n()];
        let mut edge_scores = prev.edge_scores.clone();
        for (info, sub) in self.part_info.iter().zip(subs) {
            for (l, &v) in info.vertices.iter().enumerate() {
                ranks[v as usize] = sub.ranks[l];
            }
            for (e, &(_, _, ge)) in info.internal_edges.iter().enumerate() {
                edge_scores[ge as usize] = sub.edge_scores[e];
            }
        }
        // 2. Score every cross-partition edge from the merged ranks and
        //    fold its contribution into the destination — the paper's
        //    "only mechanism ... to factor in the dependencies between
        //    the sub-problems".
        for &(src, dst, ge) in &self.cross_edges {
            let deg = self.graph.out_degree(src);
            let score = if deg == 0 {
                0.0
            } else {
                ranks[src as usize] / deg as f64
            };
            edge_scores[ge as usize] = score;
            ranks[dst as usize] += self.damping * score;
        }
        PrModel { ranks, edge_scores }
    }

    fn be_converged(&self, _prev: &PrModel, _next: &PrModel) -> bool {
        // Fixed best-effort iteration count, like the local iterations
        // ("we also terminate the local and best-effort iterations after a
        // pre-set iteration limit").
        false
    }

    fn solve_local(
        &self,
        part: usize,
        _records: &[VertexRec],
        model: &PrModel,
        cap: usize,
    ) -> (PrModel, usize) {
        let info = &self.part_info[part];
        let n_local = info.vertices.len();
        let iters = cap.min(self.local_iterations);
        let mut ranks = model.ranks.clone();
        let mut scores = model.edge_scores.clone();
        for _ in 0..iters {
            // Aggregation over internal edges only.
            let mut sums = vec![0.0; n_local];
            for (e, &(_, dst, _)) in info.internal_edges.iter().enumerate() {
                sums[dst as usize] += scores[e];
            }
            for (r, s) in ranks.iter_mut().zip(&sums) {
                *r = (1.0 - self.damping) + self.damping * s;
            }
            // Propagation with *global* out-degrees, so internal scores
            // stay consistent with what merge computes for cross edges.
            for (e, &(src, _, _)) in info.internal_edges.iter().enumerate() {
                let v = info.vertices[src as usize];
                let deg = self.graph.out_degree(v);
                scores[e] = if deg == 0 {
                    0.0
                } else {
                    ranks[src as usize] / deg as f64
                };
            }
        }
        (
            PrModel {
                ranks,
                edge_scores: scores,
            },
            iters,
        )
    }

    fn local_iteration_cap(&self) -> usize {
        self.local_iterations
    }

    fn max_be_iterations(&self) -> usize {
        self.be_iterations
    }

    fn max_topoff_iterations(&self) -> usize {
        self.topoff_iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::graph::block_local_graph;
    use pic_simnet::ClusterSpec;

    fn small_graph() -> WebGraph {
        block_local_graph(200, 4, 2, 5, 0.9, 42)
    }

    #[test]
    fn mr_iteration_matches_sequential() {
        let g = small_graph();
        let app = PageRankApp::new(g.clone(), 4, PartitionMode::Random, 1);
        let engine = Engine::new(ClusterSpec::small());
        let data = Dataset::create(&engine, "/pr/eq", g.records(), 6);
        let scope = IterScope::cluster(6, pic_mapreduce::Timing::default_analytic(), 4);
        let m0 = app.initial_model();
        let via_mr = app.iterate(&engine, &data, &m0, &scope);
        let via_seq = app.sequential_step(&m0);
        for (a, b) in via_mr.ranks.iter().zip(&via_seq.ranks) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        for (a, b) in via_mr.edge_scores.iter().zip(&via_seq.edge_scores) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn ranks_are_positive_and_sum_near_n() {
        let g = small_graph();
        let app = PageRankApp::new(g, 4, PartitionMode::Random, 1);
        let ranks = app.solve_reference(10);
        assert!(ranks.iter().all(|&r| r > 0.0));
        let total: f64 = ranks.iter().sum();
        let n = app.graph().n() as f64;
        // Rank mass stays near n for stochastic-ish graphs.
        assert!((total / n - 1.0).abs() < 0.35, "total/n = {}", total / n);
    }

    #[test]
    fn ic_runs_exactly_fixed_iterations() {
        let g = small_graph();
        let app = PageRankApp::new(g.clone(), 4, PartitionMode::Random, 1);
        let engine = Engine::new(ClusterSpec::small());
        let data = Dataset::create(&engine, "/pr/ic", g.records(), 6);
        let r = run_ic(
            &engine,
            &app,
            &data,
            app.initial_model(),
            &IcOptions::default(),
        );
        assert_eq!(r.iterations, 10, "Nutch runs a preset iteration count");
        assert!(!r.converged, "fixed-count termination, not convergence");
    }

    #[test]
    fn pic_result_close_to_ic_result() {
        let g = small_graph();
        let mut app = PageRankApp::new(g.clone(), 4, PartitionMode::Block, 1);
        // Quality check: give the top-off the full Nutch budget so the
        // comparison against the 10-iteration reference is apples-to-apples.
        app.topoff_iterations = 10;
        let reference = app.solve_reference(10);

        let engine = Engine::new(ClusterSpec::small());
        let data = Dataset::create(&engine, "/pr/pic", g.records(), 6);
        let r = run_pic(
            &engine,
            &app,
            &data,
            app.initial_model(),
            &PicOptions {
                partitions: 4,
                ..Default::default()
            },
        );
        let mean_err: f64 = r
            .final_model
            .ranks
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / reference.len() as f64;
        let mean_rank = reference.iter().sum::<f64>() / reference.len() as f64;
        assert!(
            mean_err < 0.1 * mean_rank,
            "PIC mean rank error {mean_err} vs mean rank {mean_rank}"
        );
    }

    #[test]
    fn split_then_merge_without_local_work_preserves_internal_state() {
        let g = small_graph();
        let app = PageRankApp::new(g, 4, PartitionMode::Random, 3);
        let m = {
            // A non-uniform model to make preservation visible.
            let mut m = app.initial_model();
            for (i, r) in m.ranks.iter_mut().enumerate() {
                *r = 1.0 + (i % 7) as f64 * 0.1;
            }
            app.sequential_step(&m)
        };
        let subs = app.split_model(&m, 4);
        let merged = app.merge(&subs, &m);
        // Ranks may shift by cross-edge contributions, but internal edge
        // scores and partition ranks before cross-updates derive from the
        // same values, so no rank should move by more than the total
        // cross contribution bound.
        for (a, b) in merged.ranks.iter().zip(&m.ranks) {
            assert!(*a >= *b - 1e-12, "merge only adds cross contributions");
        }
    }

    #[test]
    fn block_partition_cuts_fewer_edges_than_random() {
        let g = block_local_graph(1000, 8, 2, 6, 0.92, 5);
        let random = PageRankApp::new(g.clone(), 8, PartitionMode::Random, 1);
        let block = PageRankApp::new(g.clone(), 8, PartitionMode::Block, 1);
        let bfs = PageRankApp::new(g, 8, PartitionMode::Bfs, 1);
        assert!(block.cut_fraction() < random.cut_fraction() / 3.0);
        assert!(bfs.cut_fraction() < random.cut_fraction());
    }

    #[test]
    fn local_iterations_respect_cap() {
        let g = small_graph();
        let app = PageRankApp::new(g, 2, PartitionMode::Block, 1);
        let subs = app.split_model(&app.initial_model(), 2);
        let (_, iters) = app.solve_local(0, &[], &subs[0], 4);
        assert_eq!(iters, 4, "cap below app.local_iterations wins");
        let (_, iters) = app.solve_local(0, &[], &subs[0], 100);
        assert_eq!(iters, 10, "app.local_iterations wins below the cap");
    }

    #[test]
    fn partition_data_groups_by_assignment() {
        let g = small_graph();
        let app = PageRankApp::new(g.clone(), 4, PartitionMode::Random, 9);
        let engine = Engine::new(ClusterSpec::small());
        let data = Dataset::create(&engine, "/pr/pd", g.records(), 6);
        let parts = app.partition_data(&data, 4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), g.n());
        for (p, group) in parts.iter().enumerate() {
            for rec in group {
                assert_eq!(app.part_of[rec.id as usize] as usize, p);
            }
        }
    }
}
