//! PageRank (paper Fig. 7 for IC, Fig. 8 for PIC), after the Nutch 1.1
//! implementation the paper ports.
//!
//! Every iteration has two phases:
//!
//! * **aggregation** — `PageRank_i = (1 − c) + c · Σ_j edge_ji` over the
//!   scores of vertex `i`'s incoming edges: a full MapReduce job whose
//!   shuffle carries one record per edge (the heavy traffic);
//! * **propagation** — `edge_ji = PageRank_j / outdeg(j)`: a map-only job.
//!
//! Following the paper, the *model* is the vertex PageRanks **plus the
//! edge scores** ("we consider the set of edge scores as part of the
//! model"), which is what makes this the large-model case. Termination is
//! Nutch's: a fixed number of iterations (10), not a quality threshold.
//!
//! The PIC realization partitions vertices into disjoint groups
//! (randomly, as in the paper's evaluation; block- and BFS-based
//! partitioners are provided for the ablation). Local iterations run
//! PageRank on each sub-graph's internal edges only; the `merge` function
//! then scores every cross-partition edge from the merged ranks and adds
//! its contribution to the destination vertex — "the only mechanism we
//! have used to factor in the dependencies between the sub-problems".

mod app;
mod graph;
mod mr;

pub use app::{PageRankApp, PartitionMode};
pub use graph::{block_local_graph, VertexRec, WebGraph};
pub use mr::PrModel;
