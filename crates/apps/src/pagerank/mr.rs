//! The PageRank model and its MapReduce phases.

use super::graph::VertexRec;
use pic_mapreduce::{ByteSize, Combiner, MapContext, Mapper, ReduceContext, Reducer};

/// The PageRank model: a rank per vertex **and a score per directed edge**
/// (CSR order of the graph). Including edge scores follows the paper's
/// implementation note and makes this the large-model workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PrModel {
    /// PageRank of each vertex.
    pub ranks: Vec<f64>,
    /// Score of each edge, indexed by the graph's CSR edge index.
    pub edge_scores: Vec<f64>,
}

impl PrModel {
    /// The customary initial model: every rank 1.0, every edge score
    /// `1 / outdeg(src)` (uniform rank propagated once).
    pub fn uniform(n: usize, out_degrees: impl Iterator<Item = usize> + Clone) -> Self {
        let mut edge_scores = Vec::new();
        for d in out_degrees {
            let s = if d == 0 { 0.0 } else { 1.0 / d as f64 };
            edge_scores.extend(std::iter::repeat_n(s, d));
        }
        PrModel {
            ranks: vec![1.0; n],
            edge_scores,
        }
    }
}

impl ByteSize for PrModel {
    fn byte_size(&self) -> u64 {
        4 + 8 * self.ranks.len() as u64 + 4 + 8 * self.edge_scores.len() as u64
    }
}

/// Aggregation mapper: for each out-edge `(v, u)` of the input vertex,
/// emit `(u, edge_score(v→u))`. One shuffle record per edge — the traffic
/// the paper's Fig. 2-style analysis worries about.
pub struct AggMapper<'a> {
    /// Current model (edge scores are read CSR-indexed).
    pub model: &'a PrModel,
    /// CSR offsets of the graph.
    pub offsets: &'a [u64],
}

impl Mapper for AggMapper<'_> {
    type In = VertexRec;
    type K = u32;
    type V = f64;

    fn map(&self, rec: &VertexRec, ctx: &mut MapContext<u32, f64>) {
        let base = self.offsets[rec.id as usize];
        for (i, &dst) in rec.out.iter().enumerate() {
            ctx.emit(dst, self.model.edge_scores[base as usize + i]);
        }
    }
}

/// Combiner: partial-sum incoming scores per destination within a map task.
pub struct ScoreSumCombiner;

impl Combiner for ScoreSumCombiner {
    type K = u32;
    type V = f64;

    fn combine(&self, _k: &u32, values: &mut Vec<f64>) {
        if values.len() > 1 {
            let s: f64 = values.iter().sum();
            values.clear();
            values.push(s);
        }
    }
}

/// Aggregation reducer: `rank = (1 − c) + c · Σ incoming scores`.
pub struct RankReducer {
    /// Damping factor `c` (0.85 in the paper).
    pub damping: f64,
}

impl Reducer for RankReducer {
    type K = u32;
    type V = f64;
    type Out = (u32, f64);

    fn reduce(&self, key: &u32, values: &[f64], ctx: &mut ReduceContext<(u32, f64)>) {
        let sum: f64 = values.iter().sum();
        ctx.emit((*key, (1.0 - self.damping) + self.damping * sum));
    }
}

/// Propagation mapper (map-only phase): for each out-edge of the input
/// vertex emit `(edge index, rank(v) / outdeg(v))`.
pub struct PropagateMapper<'a> {
    /// Ranks produced by the aggregation phase.
    pub ranks: &'a [f64],
    /// CSR offsets of the graph.
    pub offsets: &'a [u64],
}

impl Mapper for PropagateMapper<'_> {
    type In = VertexRec;
    type K = u64;
    type V = f64;

    fn map(&self, rec: &VertexRec, ctx: &mut MapContext<u64, f64>) {
        let deg = rec.out.len();
        if deg == 0 {
            return;
        }
        let score = self.ranks[rec.id as usize] / deg as f64;
        let base = self.offsets[rec.id as usize];
        for i in 0..deg {
            ctx.emit(base + i as u64, score);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_model_scores() {
        let m = PrModel::uniform(3, [2usize, 0, 1].into_iter());
        assert_eq!(m.ranks, vec![1.0; 3]);
        assert_eq!(m.edge_scores, vec![0.5, 0.5, 1.0]);
    }

    #[test]
    fn agg_mapper_emits_incoming_scores() {
        let model = PrModel {
            ranks: vec![1.0; 3],
            edge_scores: vec![0.3, 0.7, 0.5],
        };
        let offsets = vec![0u64, 2, 2, 3];
        let mapper = AggMapper {
            model: &model,
            offsets: &offsets,
        };
        let mut ctx = MapContext::new();
        mapper.map(
            &VertexRec {
                id: 0,
                out: vec![1, 2],
            },
            &mut ctx,
        );
        let (pairs, _) = ctx.into_parts();
        assert_eq!(pairs, vec![(1, 0.3), (2, 0.7)]);
    }

    #[test]
    fn rank_reducer_applies_damping() {
        let r = RankReducer { damping: 0.85 };
        let mut ctx = ReduceContext::new();
        r.reduce(&5, &[0.2, 0.3], &mut ctx);
        let (out, _) = ctx.into_parts();
        assert_eq!(out.len(), 1);
        let (v, rank) = out[0];
        assert_eq!(v, 5);
        assert!((rank - (0.15 + 0.85 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn propagate_mapper_divides_rank_by_outdeg() {
        let ranks = vec![2.0, 1.0];
        let offsets = vec![0u64, 2, 2];
        let mapper = PropagateMapper {
            ranks: &ranks,
            offsets: &offsets,
        };
        let mut ctx = MapContext::new();
        mapper.map(
            &VertexRec {
                id: 0,
                out: vec![1, 1],
            },
            &mut ctx,
        );
        let (pairs, _) = ctx.into_parts();
        assert_eq!(pairs, vec![(0, 1.0), (1, 1.0)]);
    }

    #[test]
    fn dangling_vertex_emits_nothing() {
        let ranks = vec![1.0];
        let offsets = vec![0u64, 0];
        let mapper = PropagateMapper {
            ranks: &ranks,
            offsets: &offsets,
        };
        let mut ctx = MapContext::new();
        mapper.map(&VertexRec { id: 0, out: vec![] }, &mut ctx);
        assert_eq!(ctx.emitted(), 0);
    }

    #[test]
    fn model_byte_size_counts_both_parts() {
        let m = PrModel {
            ranks: vec![0.0; 10],
            edge_scores: vec![0.0; 30],
        };
        assert_eq!(m.byte_size(), 4 + 80 + 4 + 240);
    }
}
