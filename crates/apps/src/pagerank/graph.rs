//! Web-graph representation and the block-local synthetic generator.

use pic_mapreduce::ByteSize;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A directed web graph in adjacency-list form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WebGraph {
    /// Out-neighbour lists; `out[v]` are the pages `v` links to.
    pub out: Vec<Vec<u32>>,
}

impl WebGraph {
    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges.
    pub fn m(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: u32) -> usize {
        self.out[v as usize].len()
    }

    /// CSR edge offsets: edge `(v, out[v][i])` has global index
    /// `offsets[v] + i`. Edge scores in [`super::PrModel`] are stored in
    /// this order.
    pub fn csr_offsets(&self) -> Vec<u64> {
        let mut off = Vec::with_capacity(self.n() + 1);
        let mut acc = 0u64;
        for v in &self.out {
            off.push(acc);
            acc += v.len() as u64;
        }
        off.push(acc);
        off
    }

    /// The graph as dataset records.
    pub fn records(&self) -> Vec<VertexRec> {
        self.out
            .iter()
            .enumerate()
            .map(|(v, out)| VertexRec {
                id: v as u32,
                out: out.clone(),
            })
            .collect()
    }

    /// Undirected-ish adjacency (successors only) for the BFS partitioner.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n()];
        for (v, outs) in self.out.iter().enumerate() {
            for &u in outs {
                adj[v].push(u as usize);
                adj[u as usize].push(v);
            }
        }
        adj
    }
}

/// One vertex and its out-links — the input record type of the PageRank
/// jobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexRec {
    /// Vertex id.
    pub id: u32,
    /// Out-neighbours.
    pub out: Vec<u32>,
}

impl ByteSize for VertexRec {
    fn byte_size(&self) -> u64 {
        4 + 4 + 4 * self.out.len() as u64
    }
}

/// Generate a block-local web graph: `n` vertices in `blocks` equal
/// groups; each vertex links to `min_deg..=max_deg` targets, each chosen
/// inside its own block with probability `locality` and uniformly at
/// random otherwise. This is the structure the paper's §VI.B argues makes
/// PageRank "nearly uncoupled" ("fortunately the web graph is typically
/// local"). Self-loops are skipped; duplicate edges are allowed, as on
/// the real web.
pub fn block_local_graph(
    n: usize,
    blocks: usize,
    min_deg: usize,
    max_deg: usize,
    locality: f64,
    seed: u64,
) -> WebGraph {
    assert!(n > 0 && blocks > 0 && blocks <= n, "bad graph shape");
    assert!(min_deg <= max_deg, "bad degree range");
    assert!((0.0..=1.0).contains(&locality), "locality is a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let block_size = n.div_ceil(blocks);
    let out = (0..n)
        .map(|v| {
            let block = v / block_size;
            let lo = block * block_size;
            let hi = ((block + 1) * block_size).min(n);
            let deg = rng.gen_range(min_deg..=max_deg);
            let mut targets = Vec::with_capacity(deg);
            while targets.len() < deg {
                let t = if rng.gen::<f64>() < locality {
                    rng.gen_range(lo..hi)
                } else {
                    rng.gen_range(0..n)
                };
                if t != v {
                    targets.push(t as u32);
                }
            }
            targets
        })
        .collect();
    WebGraph { out }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = block_local_graph(100, 5, 2, 6, 0.9, 7);
        let b = block_local_graph(100, 5, 2, 6, 0.9, 7);
        assert_eq!(a, b);
        assert_eq!(a.n(), 100);
    }

    #[test]
    fn degrees_in_range_and_no_self_loops() {
        let g = block_local_graph(200, 4, 1, 5, 0.8, 3);
        for (v, outs) in g.out.iter().enumerate() {
            assert!(outs.len() >= 1 && outs.len() <= 5);
            assert!(outs.iter().all(|&u| u as usize != v));
        }
    }

    #[test]
    fn locality_controls_block_edges() {
        let n = 1000;
        let blocks = 10;
        let block_size = n / blocks;
        let frac_local = |g: &WebGraph| {
            let mut local = 0usize;
            let mut total = 0usize;
            for (v, outs) in g.out.iter().enumerate() {
                for &u in outs {
                    total += 1;
                    if u as usize / block_size == v / block_size {
                        local += 1;
                    }
                }
            }
            local as f64 / total as f64
        };
        let tight = block_local_graph(n, blocks, 3, 6, 0.95, 1);
        let loose = block_local_graph(n, blocks, 3, 6, 0.1, 1);
        assert!(frac_local(&tight) > 0.9);
        assert!(frac_local(&loose) < 0.3);
    }

    #[test]
    fn csr_offsets_index_edges() {
        let g = WebGraph {
            out: vec![vec![1, 2], vec![], vec![0]],
        };
        assert_eq!(g.csr_offsets(), vec![0, 2, 2, 3]);
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn records_roundtrip() {
        let g = block_local_graph(20, 2, 1, 3, 0.5, 9);
        let recs = g.records();
        assert_eq!(recs.len(), 20);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.id as usize, i);
            assert_eq!(r.out, g.out[i]);
        }
    }

    #[test]
    fn vertex_rec_byte_size() {
        let r = VertexRec {
            id: 0,
            out: vec![1, 2, 3],
        };
        assert_eq!(r.byte_size(), 4 + 4 + 12);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = WebGraph {
            out: vec![vec![1], vec![2], vec![]],
        };
        let adj = g.adjacency();
        assert!(adj[0].contains(&1) && adj[1].contains(&0));
        assert!(adj[1].contains(&2) && adj[2].contains(&1));
    }
}
