//! # pic-apps — the five case studies from the PIC paper
//!
//! Each application provides:
//!
//! * a synthetic data generator with the statistical structure of the
//!   paper's dataset (documented per module);
//! * a conventional iterative-convergence (IC) realization on the
//!   MapReduce engine, following the paper's Fig. 1 template;
//! * a PIC realization (the `partition` / `merge` / `BE_converged` triple
//!   of Fig. 4) via the `pic-core` traits;
//! * quality metrics matching the ones the paper evaluates (§VI).
//!
//! | module | paper workload | model |
//! |---|---|---|
//! | [`kmeans`] | K-means clustering (Fig. 1b, Fig. 6) | k centroids |
//! | [`pagerank`] | Nutch-style PageRank (Fig. 7, Fig. 8) | vertex ranks + edge scores |
//! | [`neuralnet`] | backprop MLP on OCR vectors | layer weights |
//! | [`linsolve`] | Jacobi solver, weakly diagonally dominant | solution vector |
//! | [`smoothing`] | iterative image smoothing (stencil) | the image itself |

#![warn(missing_docs)]

pub mod kmeans;
pub mod linsolve;
pub mod neuralnet;
pub mod pagerank;
pub mod smoothing;
