//! Iterative linear-equation solver (the paper's fourth case study: "a
//! linear system of 100 variables with a weakly diagonal dominant
//! matrix").
//!
//! The iteration is Jacobi: `x_i' = (b_i − Σ_{j≠i} a_ij x_j) / a_ii`.
//!
//! * **IC realization**: one MapReduce job per sweep. The mapper holds the
//!   current `x` (the model) and processes one matrix row per record,
//!   emitting `(i, x_i')`; the reducer is identity. Convergence: largest
//!   component change below a threshold.
//! * **PIC realization**: `partition` splits rows into contiguous blocks —
//!   block Jacobi, which is exactly the additive-Schwarz structure the
//!   paper's §VI.B analyzes ("a 'weak diagonal dominant' matrix property
//!   guarantees the 'nearly uncoupled' property"). Local iterations sweep
//!   a block with off-block unknowns frozen at the best-effort iteration's
//!   starting values; `merge` concatenates the disjoint blocks (the
//!   paper's piece-back-together default).
//!
//! Weak diagonal dominance makes both the global sweep and every
//! sub-problem a contraction, so PIC provably converges to the same unique
//! solution — this is the app where the paper's preconditioner analysis is
//! exact.

mod app;
mod system;

pub use app::{LinSolveApp, LocalSolver};
pub use system::{diag_dominant_system, LinSystem, Row};
