//! Linear systems and the weakly-diagonally-dominant generator.

use pic_mapreduce::ByteSize;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One row of `A x = b`: the record type of the Jacobi job.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Row index.
    pub i: u32,
    /// Dense coefficients `a_i·`.
    pub a: Vec<f64>,
    /// Right-hand side `b_i`.
    pub b: f64,
}

impl ByteSize for Row {
    fn byte_size(&self) -> u64 {
        4 + 4 + 8 * self.a.len() as u64 + 8
    }
}

/// A dense linear system with its known exact solution (for error
/// metrics: "for the system of linear equations, there exists a unique
/// golden solution", paper §VI.A).
#[derive(Debug, Clone, PartialEq)]
pub struct LinSystem {
    /// Rows of `A` and `b`.
    pub rows: Vec<Row>,
    /// The golden solution `x*` the system was constructed from.
    pub exact: Vec<f64>,
}

impl LinSystem {
    /// Number of unknowns.
    pub fn n(&self) -> usize {
        self.rows.len()
    }

    /// One synchronous Jacobi sweep from `x`.
    pub fn jacobi_sweep(&self, x: &[f64]) -> Vec<f64> {
        self.rows.iter().map(|row| jacobi_row(row, x)).collect()
    }

    /// L2 distance of `x` to the golden solution.
    pub fn error(&self, x: &[f64]) -> f64 {
        pic_core::convergence::l2_distance(x, &self.exact)
    }
}

/// The L2 residual `‖A x − b‖₂` over `rows` — the reference-free
/// distance of `x` from the solution of the system.
pub fn residual_l2(rows: &[Row], x: &[f64]) -> f64 {
    rows.iter()
        .map(|row| {
            let ax: f64 = row.a.iter().zip(x).map(|(a, xj)| a * xj).sum();
            (ax - row.b).powi(2)
        })
        .sum::<f64>()
        .sqrt()
}

/// The Jacobi update of one row: `(b_i − Σ_{j≠i} a_ij x_j) / a_ii`.
#[inline]
pub fn jacobi_row(row: &Row, x: &[f64]) -> f64 {
    let i = row.i as usize;
    let mut acc = row.b;
    for (j, (&a, &xj)) in row.a.iter().zip(x).enumerate() {
        if j != i {
            acc -= a * xj;
        }
    }
    acc / row.a[i]
}

/// Generate an `n × n` weakly diagonally dominant system with a known
/// solution: off-diagonals are uniform in `(0, 1]` (all positive, so the
/// Jacobi iteration matrix's spectral radius actually sits near the
/// dominance bound `1/(1+margin)` — with mixed signs random cancellation
/// makes convergence unrealistically fast, and the paper's "weakly"
/// dominant system converges slowly); the diagonal is the row's absolute
/// off-diagonal sum times `(1 + margin)`; `x*` is uniform in `[-1, 1]`,
/// and `b = A x*`.
pub fn diag_dominant_system(n: usize, margin: f64, seed: u64) -> LinSystem {
    assert!(n > 0, "need at least one unknown");
    assert!(margin > 0.0, "margin must be positive for dominance");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..n).map(|_| rng.gen::<f64>().max(1e-3)).collect())
        .collect();
    for (i, row) in a.iter_mut().enumerate() {
        let off: f64 = row
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, v)| v.abs())
            .sum();
        row[i] = (off.max(1e-9)) * (1.0 + margin);
    }
    let exact: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
    let rows = a
        .into_iter()
        .enumerate()
        .map(|(i, coeffs)| {
            let b = coeffs.iter().zip(&exact).map(|(c, x)| c * x).sum();
            Row {
                i: i as u32,
                a: coeffs,
                b,
            }
        })
        .collect();
    LinSystem { rows, exact }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_produces_dominant_rows() {
        let sys = diag_dominant_system(50, 0.2, 3);
        for row in &sys.rows {
            let i = row.i as usize;
            let off: f64 = row
                .a
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(row.a[i] > off, "row {i} not dominant");
        }
    }

    #[test]
    fn b_is_consistent_with_exact() {
        let sys = diag_dominant_system(20, 0.3, 1);
        for row in &sys.rows {
            let ax: f64 = row.a.iter().zip(&sys.exact).map(|(a, x)| a * x).sum();
            assert!((ax - row.b).abs() < 1e-9);
        }
    }

    #[test]
    fn jacobi_converges_to_exact() {
        let sys = diag_dominant_system(40, 0.3, 7);
        let mut x = vec![0.0; 40];
        for _ in 0..200 {
            x = sys.jacobi_sweep(&x);
        }
        assert!(sys.error(&x) < 1e-8, "error {}", sys.error(&x));
    }

    #[test]
    fn jacobi_error_contracts_monotonically() {
        let sys = diag_dominant_system(30, 0.5, 9);
        let mut x = vec![0.0; 30];
        let mut prev = sys.error(&x);
        for _ in 0..20 {
            x = sys.jacobi_sweep(&x);
            let e = sys.error(&x);
            assert!(e <= prev + 1e-12, "{e} > {prev}");
            prev = e;
        }
    }

    #[test]
    fn exact_solution_is_fixed_point() {
        let sys = diag_dominant_system(25, 0.4, 11);
        let next = sys.jacobi_sweep(&sys.exact);
        for (a, b) in next.iter().zip(&sys.exact) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(
            diag_dominant_system(10, 0.2, 5),
            diag_dominant_system(10, 0.2, 5)
        );
    }

    #[test]
    fn row_byte_size() {
        let r = Row {
            i: 0,
            a: vec![0.0; 100],
            b: 0.0,
        };
        assert_eq!(r.byte_size(), 4 + 4 + 800 + 8);
    }
}
