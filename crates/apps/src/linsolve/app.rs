//! The linear-solver [`IterativeApp`] / [`PicApp`] implementation.

use super::system::{jacobi_row, residual_l2, Row};
use pic_core::convergence::max_abs_diff;
use pic_core::prelude::*;
use pic_mapreduce::{Dataset, Engine, MapContext, Mapper, ReduceContext, Reducer};

/// Jacobi mapper: one row per record, emits `(i, x_i')` against the
/// mapper's frozen copy of `x`.
struct JacobiMapper<'a> {
    x: &'a [f64],
}

impl Mapper for JacobiMapper<'_> {
    type In = Row;
    type K = u32;
    type V = f64;

    fn map(&self, row: &Row, ctx: &mut MapContext<u32, f64>) {
        ctx.emit(row.i, jacobi_row(row, self.x));
    }
}

/// Identity reducer: each unknown has exactly one update.
struct IdentityReducer;

impl Reducer for IdentityReducer {
    type K = u32;
    type V = f64;
    type Out = (u32, f64);

    fn reduce(&self, key: &u32, values: &[f64], ctx: &mut ReduceContext<(u32, f64)>) {
        debug_assert_eq!(values.len(), 1, "one Jacobi update per unknown");
        ctx.emit((*key, values[0]));
    }
}

/// The sweep kernel used inside a sub-problem's local iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalSolver {
    /// Synchronous Jacobi — identical to the global iteration (what the
    /// paper's "fully re-used" implementation gives you).
    #[default]
    Jacobi,
    /// Gauss–Seidel — uses updates within the sweep immediately;
    /// converges roughly twice as fast on dominant systems. Legitimate
    /// inside a sub-problem because local iterations are single-task and
    /// sequential anyway (an ablation on the local-solver choice).
    GaussSeidel,
}

/// Jacobi solver for `A x = b`; the model is the solution vector `x`.
pub struct LinSolveApp {
    /// Number of unknowns.
    pub n: usize,
    /// Convergence threshold on the largest component change.
    pub threshold: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Exact solution for the error metric (`None` disables it).
    pub exact: Option<Vec<f64>>,
    /// System rows for the `‖Ax − b‖₂` quality index (`None` disables it).
    pub rows: Option<Vec<Row>>,
    /// Local sweep kernel for the best-effort phase.
    pub local_solver: LocalSolver,
    /// Per-partition contiguous row ranges, fixed at construction (block
    /// Jacobi structure).
    parts: usize,
}

impl LinSolveApp {
    /// A solver for `n` unknowns split into `parts` row blocks.
    pub fn new(n: usize, parts: usize, threshold: f64) -> Self {
        assert!(parts > 0 && parts <= n, "need 1..=n partitions");
        LinSolveApp {
            n,
            threshold,
            max_iterations: 500,
            exact: None,
            rows: None,
            local_solver: LocalSolver::default(),
            parts,
        }
    }

    /// Attach the golden solution for error trajectories.
    pub fn with_exact(mut self, exact: Vec<f64>) -> Self {
        assert_eq!(exact.len(), self.n, "solution length mismatch");
        self.exact = Some(exact);
        self
    }

    /// Attach the system rows, enabling the `‖Ax − b‖₂` quality index.
    pub fn with_rows(mut self, rows: Vec<Row>) -> Self {
        assert_eq!(rows.len(), self.n, "row count mismatch");
        self.rows = Some(rows);
        self
    }

    /// Row range owned by partition `p` (contiguous block split).
    pub fn block_range(&self, p: usize) -> std::ops::Range<usize> {
        let base = self.n / self.parts;
        let rem = self.n % self.parts;
        let start = p * base + p.min(rem);
        let len = base + usize::from(p < rem);
        start..start + len
    }
}

impl IterativeApp for LinSolveApp {
    type Record = Row;
    type Model = Vec<f64>;

    fn name(&self) -> &str {
        "linsolve"
    }

    fn iterate(
        &self,
        engine: &Engine,
        data: &Dataset<Row>,
        model: &Vec<f64>,
        scope: &IterScope,
    ) -> Vec<f64> {
        let res = engine.run(
            &scope.job("jacobi"),
            data,
            &JacobiMapper { x: model },
            &IdentityReducer,
        );
        let mut next = model.clone();
        for (i, v) in res.output {
            next[i as usize] = v;
        }
        next
    }

    fn converged(&self, prev: &Vec<f64>, next: &Vec<f64>) -> bool {
        max_abs_diff(prev, next) < self.threshold
    }

    fn error(&self, model: &Vec<f64>) -> Option<f64> {
        self.exact
            .as_ref()
            .map(|e| pic_core::convergence::l2_distance(model, e))
    }

    fn max_iterations(&self) -> usize {
        self.max_iterations
    }
}

impl QualityProbe for LinSolveApp {
    /// The system residual `‖Ax − b‖₂` when the rows are attached — the
    /// solver's quality metric that needs no golden solution.
    fn quality(&self, model: &Vec<f64>) -> QualitySample {
        let mut indices = Vec::new();
        if let Some(rows) = &self.rows {
            indices.push(("residual_l2", residual_l2(rows, model)));
        }
        QualitySample {
            objective: self.error(model),
            indices,
        }
    }
}

impl PicApp for LinSolveApp {
    fn partition_data(&self, data: &Dataset<Row>, parts: usize) -> Vec<Vec<Row>> {
        assert_eq!(
            parts, self.parts,
            "PicOptions.partitions must match the app"
        );
        // Rows grouped by their owning block, in order.
        let mut out: Vec<Vec<Row>> = (0..parts).map(|_| Vec::new()).collect();
        for row in data.iter_records() {
            let p = (0..parts)
                .find(|&p| self.block_range(p).contains(&(row.i as usize)))
                .expect("row index within n");
            out[p].push(row.clone());
        }
        out
    }

    fn split_model(&self, model: &Vec<f64>, parts: usize) -> Vec<Vec<f64>> {
        assert_eq!(parts, self.parts, "partition count mismatch");
        // Each sub-problem needs the *full* vector: its own block to
        // iterate, the rest as frozen boundary values.
        vec![model.clone(); parts]
    }

    fn merge(&self, subs: &[Vec<f64>], _prev: &Vec<f64>) -> Vec<f64> {
        // Disjoint-block merge: piece the owned blocks back together.
        let mut out = vec![0.0; self.n];
        for (p, sub) in subs.iter().enumerate() {
            let range = self.block_range(p);
            out[range.clone()].copy_from_slice(&sub[range]);
        }
        out
    }

    fn max_be_iterations(&self) -> usize {
        // Best-effort rounds are cheap (local sweeps are in-memory), and a
        // weakly dominant system needs many of them: the additive-Schwarz
        // outer iteration contracts at the cross-block coupling rate, not
        // the (fast) within-block rate. Capping low would push the work
        // into far more expensive top-off iterations.
        400
    }

    fn solve_local(
        &self,
        part: usize,
        records: &[Row],
        model: &Vec<f64>,
        cap: usize,
    ) -> (Vec<f64>, usize) {
        // Block relaxation: sweep only this block's rows; off-block
        // unknowns stay frozen at the best-effort iteration's starting
        // values.
        let range = self.block_range(part);
        let mut x = model.clone();
        for it in 1..=cap {
            let mut max_change = 0.0f64;
            match self.local_solver {
                LocalSolver::Jacobi => {
                    let updates: Vec<f64> = records.iter().map(|r| jacobi_row(r, &x)).collect();
                    for (r, v) in records.iter().zip(updates) {
                        let i = r.i as usize;
                        debug_assert!(range.contains(&i));
                        max_change = max_change.max((x[i] - v).abs());
                        x[i] = v;
                    }
                }
                LocalSolver::GaussSeidel => {
                    for r in records {
                        let i = r.i as usize;
                        debug_assert!(range.contains(&i));
                        let v = jacobi_row(r, &x);
                        max_change = max_change.max((x[i] - v).abs());
                        x[i] = v;
                    }
                }
            }
            if max_change < self.threshold {
                return (x, it);
            }
        }
        (x, cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linsolve::system::diag_dominant_system;
    use pic_simnet::ClusterSpec;

    fn setup(n: usize, parts: usize) -> (LinSolveApp, super::super::system::LinSystem) {
        let sys = diag_dominant_system(n, 0.3, 17);
        let app = LinSolveApp::new(n, parts, 1e-9).with_exact(sys.exact.clone());
        (app, sys)
    }

    #[test]
    fn mr_iteration_equals_sequential_sweep() {
        let (app, sys) = setup(60, 4);
        let engine = Engine::new(ClusterSpec::small());
        let data = Dataset::create(&engine, "/ls/eq", sys.rows.clone(), 6);
        let scope = IterScope::cluster(6, pic_mapreduce::Timing::default_analytic(), 4);
        let x0 = vec![0.0; 60];
        let via_mr = app.iterate(&engine, &data, &x0, &scope);
        let via_seq = sys.jacobi_sweep(&x0);
        for (a, b) in via_mr.iter().zip(&via_seq) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn ic_solves_to_golden_solution() {
        let (app, sys) = setup(80, 4);
        let engine = Engine::new(ClusterSpec::small());
        let data = Dataset::create(&engine, "/ls/ic", sys.rows.clone(), 6);
        let r = run_ic(&engine, &app, &data, vec![0.0; 80], &IcOptions::default());
        assert!(r.converged);
        assert!(
            sys.error(&r.final_model) < 1e-6,
            "err {}",
            sys.error(&r.final_model)
        );
    }

    #[test]
    fn pic_solves_to_the_same_unique_solution() {
        // This is the app where PIC's convergence is provable (additive
        // Schwarz on a contraction): final answers must agree.
        let (app, sys) = setup(100, 5);
        let engine = Engine::new(ClusterSpec::small());
        let data = Dataset::create(&engine, "/ls/pic", sys.rows.clone(), 6);
        let r = run_pic(
            &engine,
            &app,
            &data,
            vec![0.0; 100],
            &PicOptions {
                partitions: 5,
                ..Default::default()
            },
        );
        assert!(r.topoff_converged);
        assert!(
            sys.error(&r.final_model) < 1e-6,
            "err {}",
            sys.error(&r.final_model)
        );
        assert!(r.be_final_error.expect("metric") < 1.0);
    }

    #[test]
    fn block_ranges_partition_the_unknowns() {
        let app = LinSolveApp::new(103, 7, 1e-9);
        let mut next = 0;
        for p in 0..7 {
            let r = app.block_range(p);
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, 103);
    }

    #[test]
    fn merge_concatenates_owned_blocks() {
        let app = LinSolveApp::new(6, 2, 1e-9);
        let sub0 = vec![1.0, 2.0, 3.0, -1.0, -1.0, -1.0];
        let sub1 = vec![-2.0, -2.0, -2.0, 4.0, 5.0, 6.0];
        let merged = app.merge(&[sub0, sub1], &vec![0.0; 6]);
        assert_eq!(merged, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn local_solve_touches_only_its_block() {
        let (app, sys) = setup(40, 4);
        let engine = Engine::new(ClusterSpec::small());
        let data = Dataset::create(&engine, "/ls/loc", sys.rows.clone(), 4);
        let parts = app.partition_data(&data, 4);
        let x0 = vec![0.25; 40];
        let (x, iters) = app.solve_local(1, &parts[1], &x0, 100);
        assert!(iters >= 1);
        let range = app.block_range(1);
        for i in 0..40 {
            if range.contains(&i) {
                continue;
            }
            assert_eq!(x[i], 0.25, "off-block unknown {i} must stay frozen");
        }
    }

    #[test]
    fn be_phase_error_decreases_with_iterations() {
        let (app, sys) = setup(60, 3);
        let engine = Engine::new(ClusterSpec::small());
        let data = Dataset::create(&engine, "/ls/traj", sys.rows.clone(), 6);
        let r = run_pic(
            &engine,
            &app,
            &data,
            vec![0.0; 60],
            &PicOptions {
                partitions: 3,
                ..Default::default()
            },
        );
        // Trajectory from the golden-solution metric must be decreasing
        // (contraction), modulo the final few stagnant points.
        let t = &r.trajectory;
        assert!(t.len() >= 3);
        assert!(t.last().unwrap().error <= t[0].error);
    }
}

#[cfg(test)]
mod gauss_seidel_tests {
    use super::*;
    use crate::linsolve::system::diag_dominant_system;

    #[test]
    fn gauss_seidel_local_converges_faster_than_jacobi() {
        let sys = diag_dominant_system(60, 0.1, 41);
        let mut jacobi = LinSolveApp::new(60, 3, 1e-9);
        jacobi.local_solver = LocalSolver::Jacobi;
        let mut gs = LinSolveApp::new(60, 3, 1e-9);
        gs.local_solver = LocalSolver::GaussSeidel;

        let rows: Vec<Row> = sys.rows[jacobi.block_range(0)].to_vec();
        let x0 = vec![0.0; 60];
        let (_, it_j) = jacobi.solve_local(0, &rows, &x0, 500);
        let (_, it_gs) = gs.solve_local(0, &rows, &x0, 500);
        assert!(
            it_gs < it_j,
            "Gauss-Seidel ({it_gs}) should beat Jacobi ({it_j}) locally"
        );
    }

    #[test]
    fn both_local_solvers_land_on_the_same_block_solution() {
        let sys = diag_dominant_system(40, 0.2, 43);
        let mut jacobi = LinSolveApp::new(40, 4, 1e-12);
        jacobi.local_solver = LocalSolver::Jacobi;
        let mut gs = LinSolveApp::new(40, 4, 1e-12);
        gs.local_solver = LocalSolver::GaussSeidel;
        let rows: Vec<Row> = sys.rows[jacobi.block_range(1)].to_vec();
        let x0 = vec![0.1; 40];
        let (xj, _) = jacobi.solve_local(1, &rows, &x0, 5000);
        let (xg, _) = gs.solve_local(1, &rows, &x0, 5000);
        for (a, b) in xj.iter().zip(&xg) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }
}
