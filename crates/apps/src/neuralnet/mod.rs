//! Neural-network training with back-propagation (the paper's third case
//! study: "neural network training using back propagation" on ~210,000
//! optical character recognition vectors).
//!
//! The network is a one-hidden-layer MLP (sigmoid hidden units, softmax
//! output, cross-entropy loss) trained by full-batch gradient descent:
//!
//! * **IC realization**: each iteration is one MapReduce job. The mapper
//!   computes the back-propagated gradient of its sample and emits it
//!   keyed by a single key; a combiner sums gradients within each map task
//!   (without it the shuffle carries one full gradient *per sample* — the
//!   large-intermediate-data regime); the reducer sums to the batch
//!   gradient, and the driver takes a gradient step. Convergence: largest
//!   weight change below a threshold.
//! * **PIC realization**: `partition` randomly splits the training set and
//!   copies the model; local iterations run full-batch gradient descent on
//!   each partition to local convergence; `merge` averages the weight
//!   vectors — the model-averaging scheme the paper's merge defaults
//!   ("average the respective entries in the vectors") prescribe.
//!
//! The synthetic "OCR" set is a 10-class Gaussian mixture over pixel
//! vectors in `[0, 1]^d`, plus a held-out validation set used for the
//! paper's Fig. 12(a) error metric (misclassification rate).

mod app;
pub mod data;
mod mlp;
mod mr;

pub use app::NeuralNetApp;
pub use data::{ocr_like, ocr_like_split, Sample};
pub use mlp::Mlp;
