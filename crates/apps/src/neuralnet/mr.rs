//! MapReduce step for batch gradient descent.

use super::data::Sample;
use super::mlp::Mlp;
use pic_mapreduce::{Combiner, MapContext, Mapper, ReduceContext, Reducer};

/// Shuffle value: a flattened gradient sum plus the sample count it covers.
pub type GradSum = (Vec<f64>, u64);

/// Mapper: back-propagate one sample through the current model and emit
/// its gradient under a single key. Without the combiner this ships one
/// full parameter-sized vector per sample — the paper's
/// large-intermediate-data regime.
pub struct GradMapper<'a> {
    /// Current model.
    pub model: &'a Mlp,
}

impl Mapper for GradMapper<'_> {
    type In = Sample;
    type K = u8;
    type V = GradSum;

    fn map(&self, s: &Sample, ctx: &mut MapContext<u8, GradSum>) {
        ctx.emit(0, (self.model.gradient(s), 1));
    }
}

/// Combiner: sum gradient vectors within a map task.
pub struct GradCombiner;

impl Combiner for GradCombiner {
    type K = u8;
    type V = GradSum;

    fn combine(&self, _k: &u8, values: &mut Vec<GradSum>) {
        if values.len() <= 1 {
            return;
        }
        let (mut sum, mut count) = values.pop().expect("non-empty");
        for (v, c) in values.drain(..) {
            for (a, b) in sum.iter_mut().zip(&v) {
                *a += b;
            }
            count += c;
        }
        values.push((sum, count));
    }
}

/// Reducer: sum the per-task gradient sums into the batch gradient.
pub struct GradReducer;

impl Reducer for GradReducer {
    type K = u8;
    type V = GradSum;
    type Out = GradSum;

    fn reduce(&self, _key: &u8, values: &[GradSum], ctx: &mut ReduceContext<GradSum>) {
        let len = values[0].0.len();
        let mut sum = vec![0.0; len];
        let mut count = 0;
        for (v, c) in values {
            for (a, b) in sum.iter_mut().zip(v) {
                *a += b;
            }
            count += c;
        }
        ctx.emit((sum, count));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combiner_sums_gradients_and_counts() {
        let c = GradCombiner;
        let mut vals = vec![
            (vec![1.0, 2.0], 1),
            (vec![3.0, 4.0], 1),
            (vec![5.0, 6.0], 2),
        ];
        c.combine(&0, &mut vals);
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0].0, vec![9.0, 12.0]);
        assert_eq!(vals[0].1, 4);
    }

    #[test]
    fn reducer_totals() {
        let r = GradReducer;
        let mut ctx = ReduceContext::new();
        r.reduce(&0, &[(vec![1.0], 2), (vec![2.0], 3)], &mut ctx);
        let (out, _) = ctx.into_parts();
        assert_eq!(out, vec![(vec![3.0], 5)]);
    }

    #[test]
    fn mapper_emits_one_gradient_per_sample() {
        let m = Mlp::random(3, 2, 2, 1);
        let mapper = GradMapper { model: &m };
        let mut ctx = MapContext::new();
        mapper.map(
            &Sample {
                x: vec![0.1, 0.2, 0.3],
                label: 0,
            },
            &mut ctx,
        );
        let (pairs, _) = ctx.into_parts();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].1 .0.len(), m.params.len());
        assert_eq!(pairs[0].1 .1, 1);
    }
}
