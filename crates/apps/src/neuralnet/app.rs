//! The neural-network training [`IterativeApp`] / [`PicApp`]
//! implementation.

use super::data::Sample;
use super::mlp::Mlp;
use super::mr::{GradCombiner, GradMapper, GradReducer};
use pic_core::prelude::*;
use pic_mapreduce::{Dataset, Engine};

/// Back-propagation training of a one-hidden-layer MLP by full-batch
/// gradient descent.
pub struct NeuralNetApp {
    /// Learning rate.
    pub lr: f64,
    /// Epoch budget of the conventional run. Gradient-descent training
    /// never hits a crisp fixed point (the loss keeps creeping down), so —
    /// as in practice, and as the paper's Fig. 12(a) time-axis comparison
    /// implies — training is budgeted in epochs and compared by
    /// error-vs-time.
    pub max_iterations: usize,
    /// Epoch budget of the top-off phase: a short fine-tune, because the
    /// merged best-effort model has already plateaued.
    pub topoff_epochs: usize,
    /// Cap on local gradient steps per best-effort iteration.
    pub local_cap: usize,
    /// Cap on best-effort iterations.
    pub be_cap: usize,
    /// Relative shard-loss improvement below which a local solve stops
    /// (small enough to ride out the sigmoid's early plateau dip).
    pub local_rel_threshold: f64,
    /// Absolute validation-loss improvement below which best-effort
    /// iterations stop.
    pub be_loss_threshold: f64,
    /// Held-out validation set for the misclassification error metric.
    pub validation: Vec<Sample>,
    /// Seed for the random data partitioner.
    pub partition_seed: u64,
}

impl NeuralNetApp {
    /// A trainer with the given validation set and sensible defaults.
    pub fn new(validation: Vec<Sample>) -> Self {
        NeuralNetApp {
            lr: 1.0,
            max_iterations: 100,
            topoff_epochs: 10,
            local_cap: 60,
            be_cap: 8,
            local_rel_threshold: 1e-4,
            be_loss_threshold: 2e-3,
            validation,
            partition_seed: 0xbeef,
        }
    }

    fn batch_gradient(samples: &[Sample], model: &Mlp) -> (Vec<f64>, u64) {
        let mut sum = vec![0.0; model.params.len()];
        for s in samples {
            for (a, b) in sum.iter_mut().zip(model.gradient(s)) {
                *a += b;
            }
        }
        (sum, samples.len() as u64)
    }
}

impl IterativeApp for NeuralNetApp {
    type Record = Sample;
    type Model = Mlp;

    fn name(&self) -> &str {
        "neuralnet"
    }

    fn iterate(
        &self,
        engine: &Engine,
        data: &Dataset<Sample>,
        model: &Mlp,
        scope: &IterScope,
    ) -> Mlp {
        let res = engine.run_with_combiner(
            &scope.job("grad"),
            data,
            &GradMapper { model },
            &GradCombiner,
            &GradReducer,
        );
        let (grad, count) = res
            .output
            .into_iter()
            .next()
            .expect("single-key gradient job emits exactly one record");
        model.apply_gradient(&grad, count, self.lr)
    }

    fn converged(&self, _prev: &Mlp, _next: &Mlp) -> bool {
        // Epoch-budget training: the driver's iteration cap terminates the
        // run (gradient descent has no crisp fixed point to test for).
        false
    }

    fn error(&self, model: &Mlp) -> Option<f64> {
        Some(model.misclassification_rate(&self.validation))
    }

    fn max_iterations(&self) -> usize {
        self.max_iterations
    }
}

impl QualityProbe for NeuralNetApp {
    /// Held-out cross-entropy loss on the validation set, a smoother
    /// quality signal than the (stepwise) misclassification objective.
    fn quality(&self, model: &Mlp) -> QualitySample {
        let mut indices = Vec::new();
        if !self.validation.is_empty() {
            indices.push(("heldout_loss", model.loss(&self.validation)));
        }
        QualitySample {
            objective: self.error(model),
            indices,
        }
    }
}

impl PicApp for NeuralNetApp {
    fn partition_data(&self, data: &Dataset<Sample>, parts: usize) -> Vec<Vec<Sample>> {
        partition::random(data.iter_records().cloned(), parts, self.partition_seed)
    }

    fn split_model(&self, model: &Mlp, parts: usize) -> Vec<Mlp> {
        vec![model.clone(); parts]
    }

    fn merge(&self, subs: &[Mlp], _prev: &Mlp) -> Mlp {
        // Model averaging: sub-networks started from the same weights, so
        // corresponding parameters are aligned and their average is
        // meaningful (the paper's vector-average default merge).
        assert!(!subs.is_empty(), "no sub-models to merge");
        let mut params = vec![0.0; subs[0].params.len()];
        for sub in subs {
            assert_eq!(sub.params.len(), params.len(), "shape mismatch");
            for (a, b) in params.iter_mut().zip(&sub.params) {
                *a += b;
            }
        }
        for p in &mut params {
            *p /= subs.len() as f64;
        }
        Mlp { params, ..subs[0] }
    }

    fn solve_local(
        &self,
        _part: usize,
        records: &[Sample],
        model: &Mlp,
        cap: usize,
    ) -> (Mlp, usize) {
        if records.is_empty() {
            return (model.clone(), 0);
        }
        // Plateau criterion on this sub-problem's own shard loss; the
        // relative threshold is small enough to ride out the sigmoid's
        // early plateau dip.
        let mut m = model.clone();
        let mut prev_loss = m.loss(records);
        let cap = cap.min(self.local_cap);
        for it in 1..=cap {
            let (grad, count) = Self::batch_gradient(records, &m);
            m = m.apply_gradient(&grad, count, self.lr);
            let loss = m.loss(records);
            if (prev_loss - loss) / prev_loss.max(1e-12) < self.local_rel_threshold {
                return (m, it);
            }
            prev_loss = loss;
        }
        (m, cap)
    }

    fn local_iteration_cap(&self) -> usize {
        self.local_cap
    }

    fn max_be_iterations(&self) -> usize {
        self.be_cap
    }

    fn max_topoff_iterations(&self) -> usize {
        self.topoff_epochs
    }

    fn be_converged(&self, prev: &Mlp, next: &Mlp) -> bool {
        if self.validation.is_empty() {
            return false;
        }
        prev.loss(&self.validation) - next.loss(&self.validation) < self.be_loss_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_simnet::ClusterSpec;

    fn setup() -> (Vec<Sample>, Vec<Sample>, Mlp) {
        let (train, valid) = crate::neuralnet::data::ocr_like_split(300, 90, 3, 8, 0.08, 21);
        let model = Mlp::random(8, 6, 3, 5);
        (train, valid, model)
    }

    #[test]
    fn mr_iteration_equals_sequential_step() {
        let (train, valid, model) = setup();
        let engine = Engine::new(ClusterSpec::small());
        let data = Dataset::create(&engine, "/nn/eq", train.clone(), 4);
        let app = NeuralNetApp::new(valid);
        let scope = IterScope::cluster(6, pic_mapreduce::Timing::default_analytic(), 2);
        let via_mr = app.iterate(&engine, &data, &model, &scope);
        let (grad, count) = NeuralNetApp::batch_gradient(&train, &model);
        let via_seq = model.apply_gradient(&grad, count, app.lr);
        for (a, b) in via_mr.params.iter().zip(&via_seq.params) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn ic_training_reduces_validation_error() {
        let (train, valid, model) = setup();
        let engine = Engine::new(ClusterSpec::small());
        let data = Dataset::create(&engine, "/nn/ic", train, 4);
        let app = NeuralNetApp::new(valid.clone());
        let before = model.misclassification_rate(&valid);
        let r = run_ic(
            &engine,
            &app,
            &data,
            model,
            &IcOptions {
                max_iterations: Some(40),
                ..Default::default()
            },
        );
        let after = r.final_model.misclassification_rate(&valid);
        assert!(after < before, "error should drop: {before} -> {after}");
        assert!(after < 0.2, "validation error {after}");
    }

    #[test]
    fn pic_training_reaches_comparable_error() {
        let (train, valid, model) = setup();
        let engine = Engine::new(ClusterSpec::small());
        let data = Dataset::create(&engine, "/nn/pic", train, 4);
        let app = NeuralNetApp::new(valid.clone());
        let r = run_pic(
            &engine,
            &app,
            &data,
            model,
            &PicOptions {
                partitions: 3,
                ..Default::default()
            },
        );
        let err = r.final_model.misclassification_rate(&valid);
        assert!(
            err < 0.2,
            "PIC-trained net should classify well (err {err})"
        );
        // BE phase alone should already be close (paper Fig. 12(a):
        // "virtually identical ... in less than a quarter of the time").
        let be_err = r.be_final_error.expect("validation metric present");
        assert!(be_err < 0.35, "best-effort error {be_err}");
    }

    #[test]
    fn merge_averages_parameters() {
        let app = NeuralNetApp::new(vec![]);
        let a = Mlp {
            din: 1,
            dh: 1,
            dout: 2,
            params: vec![0.0, 2.0, 4.0, 0.0, 0.0, 0.0],
        };
        let b = Mlp {
            din: 1,
            dh: 1,
            dout: 2,
            params: vec![2.0, 0.0, 0.0, 2.0, 2.0, 2.0],
        };
        let m = app.merge(&[a, b], &Mlp::random(1, 1, 2, 0));
        assert_eq!(m.params, vec![1.0, 1.0, 2.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn solve_local_runs_and_improves() {
        let (train, valid, model) = setup();
        let app = NeuralNetApp::new(valid);
        let (m, iters) = app.solve_local(0, &train[..100], &model, 30);
        assert!(iters >= 1 && iters <= 30);
        assert!(m.loss(&train[..100]) < model.loss(&train[..100]));
    }

    #[test]
    fn empty_partition_is_a_noop() {
        let app = NeuralNetApp::new(vec![]);
        let model = Mlp::random(4, 3, 2, 0);
        let (m, iters) = app.solve_local(0, &[], &model, 10);
        assert_eq!(iters, 0);
        assert_eq!(m, model);
    }
}
