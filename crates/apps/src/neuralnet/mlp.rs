//! A one-hidden-layer multilayer perceptron with back-propagation.

use super::data::Sample;
use pic_mapreduce::ByteSize;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// MLP weights: sigmoid hidden layer, softmax output, cross-entropy loss.
///
/// Parameter layout when flattened (gradients use the same order):
/// `[w1 (dh×din row-major), b1 (dh), w2 (dout×dh row-major), b2 (dout)]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    /// Input dimension.
    pub din: usize,
    /// Hidden units.
    pub dh: usize,
    /// Output classes.
    pub dout: usize,
    /// Flattened parameters.
    pub params: Vec<f64>,
}

impl ByteSize for Mlp {
    fn byte_size(&self) -> u64 {
        12 + 4 + 8 * self.params.len() as u64
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl Mlp {
    /// Total parameter count for a given shape.
    pub fn param_count(din: usize, dh: usize, dout: usize) -> usize {
        dh * din + dh + dout * dh + dout
    }

    /// Random initialization in `±0.5/√din` (standard small-weight init),
    /// deterministic per `seed`.
    pub fn random(din: usize, dh: usize, dout: usize, seed: u64) -> Self {
        assert!(din > 0 && dh > 0 && dout > 0, "bad network shape");
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = 0.5 / (din as f64).sqrt();
        let params = (0..Self::param_count(din, dh, dout))
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Mlp {
            din,
            dh,
            dout,
            params,
        }
    }

    fn w1(&self) -> &[f64] {
        &self.params[..self.dh * self.din]
    }
    fn b1(&self) -> &[f64] {
        let o = self.dh * self.din;
        &self.params[o..o + self.dh]
    }
    fn w2(&self) -> &[f64] {
        let o = self.dh * self.din + self.dh;
        &self.params[o..o + self.dout * self.dh]
    }
    fn b2(&self) -> &[f64] {
        let o = self.dh * self.din + self.dh + self.dout * self.dh;
        &self.params[o..]
    }

    /// Forward pass: hidden activations and softmax class probabilities.
    pub fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(x.len(), self.din, "input dimension mismatch");
        let (w1, b1, w2, b2) = (self.w1(), self.b1(), self.w2(), self.b2());
        let mut h = vec![0.0; self.dh];
        for j in 0..self.dh {
            let mut z = b1[j];
            let row = &w1[j * self.din..(j + 1) * self.din];
            for (w, xi) in row.iter().zip(x) {
                z += w * xi;
            }
            h[j] = sigmoid(z);
        }
        let mut logits = vec![0.0; self.dout];
        for k in 0..self.dout {
            let mut z = b2[k];
            let row = &w2[k * self.dh..(k + 1) * self.dh];
            for (w, hj) in row.iter().zip(&h) {
                z += w * hj;
            }
            logits[k] = z;
        }
        // Stable softmax.
        let mx = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for z in &mut logits {
            *z = (*z - mx).exp();
            sum += *z;
        }
        for z in &mut logits {
            *z /= sum;
        }
        (h, logits)
    }

    /// Predicted class of `x`.
    pub fn predict(&self, x: &[f64]) -> u8 {
        let (_, p) = self.forward(x);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are never NaN"))
            .map(|(i, _)| i as u8)
            .expect("dout > 0")
    }

    /// Cross-entropy gradient of one sample, flattened in parameter order.
    pub fn gradient(&self, s: &Sample) -> Vec<f64> {
        let (h, p) = self.forward(&s.x);
        let mut dlogits = p;
        dlogits[s.label as usize] -= 1.0;

        let mut g = vec![0.0; self.params.len()];
        let o_w1 = 0;
        let o_b1 = self.dh * self.din;
        let o_w2 = o_b1 + self.dh;
        let o_b2 = o_w2 + self.dout * self.dh;

        // Output layer.
        for k in 0..self.dout {
            let d = dlogits[k];
            g[o_b2 + k] = d;
            for j in 0..self.dh {
                g[o_w2 + k * self.dh + j] = d * h[j];
            }
        }
        // Hidden layer.
        let w2 = self.w2();
        for j in 0..self.dh {
            let mut dh_j = 0.0;
            for k in 0..self.dout {
                dh_j += w2[k * self.dh + j] * dlogits[k];
            }
            dh_j *= h[j] * (1.0 - h[j]);
            g[o_b1 + j] = dh_j;
            for (i, xi) in s.x.iter().enumerate() {
                g[o_w1 + j * self.din + i] = dh_j * xi;
            }
        }
        g
    }

    /// Take a gradient step: `params -= lr/Σcount × grad_sum`.
    pub fn apply_gradient(&self, grad_sum: &[f64], count: u64, lr: f64) -> Mlp {
        assert_eq!(
            grad_sum.len(),
            self.params.len(),
            "gradient length mismatch"
        );
        assert!(count > 0, "gradient over zero samples");
        let scale = lr / count as f64;
        let params = self
            .params
            .iter()
            .zip(grad_sum)
            .map(|(p, g)| p - scale * g)
            .collect();
        Mlp { params, ..*self }
    }

    /// Mean cross-entropy loss over `samples`.
    pub fn loss(&self, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let total: f64 = samples
            .iter()
            .map(|s| {
                let (_, p) = self.forward(&s.x);
                -(p[s.label as usize].max(1e-300)).ln()
            })
            .sum();
        total / samples.len() as f64
    }

    /// Fraction of `samples` misclassified — the paper's Fig. 12(a) error.
    pub fn misclassification_rate(&self, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let wrong = samples
            .iter()
            .filter(|s| self.predict(&s.x) != s.label)
            .count();
        wrong as f64 / samples.len() as f64
    }

    /// Largest absolute parameter difference to `other` (the convergence
    /// quantity for gradient-descent training).
    pub fn max_param_diff(&self, other: &Mlp) -> f64 {
        assert_eq!(self.params.len(), other.params.len(), "shape mismatch");
        self.params
            .iter()
            .zip(&other.params)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neuralnet::data::ocr_like;

    fn tiny() -> Mlp {
        Mlp::random(4, 3, 2, 1)
    }

    #[test]
    fn forward_produces_probabilities() {
        let m = tiny();
        let (h, p) = m.forward(&[0.1, 0.9, 0.3, 0.5]);
        assert_eq!(h.len(), 3);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| x > 0.0 && x < 1.0));
        assert!(h.iter().all(|&x| x > 0.0 && x < 1.0));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let m = tiny();
        let s = Sample {
            x: vec![0.2, 0.7, 0.1, 0.9],
            label: 1,
        };
        let g = m.gradient(&s);
        let eps = 1e-6;
        for idx in [0, 5, 12, 14, 17, 20] {
            let mut plus = m.clone();
            plus.params[idx] += eps;
            let mut minus = m.clone();
            minus.params[idx] -= eps;
            let fd = (plus.loss(std::slice::from_ref(&s)) - minus.loss(std::slice::from_ref(&s)))
                / (2.0 * eps);
            assert!(
                (g[idx] - fd).abs() < 1e-5,
                "param {idx}: analytic {} vs fd {fd}",
                g[idx]
            );
        }
    }

    #[test]
    fn gradient_step_reduces_loss() {
        let m = tiny();
        let data = ocr_like(50, 2, 4, 0.05, 7);
        let mut gsum = vec![0.0; m.params.len()];
        for s in &data {
            for (a, b) in gsum.iter_mut().zip(m.gradient(s)) {
                *a += b;
            }
        }
        let m2 = m.apply_gradient(&gsum, data.len() as u64, 0.5);
        assert!(m2.loss(&data) < m.loss(&data));
    }

    #[test]
    fn training_learns_separable_classes() {
        let data = ocr_like(200, 2, 6, 0.05, 11);
        let mut m = Mlp::random(6, 5, 2, 3);
        for _ in 0..200 {
            let mut gsum = vec![0.0; m.params.len()];
            for s in &data {
                for (a, b) in gsum.iter_mut().zip(m.gradient(s)) {
                    *a += b;
                }
            }
            m = m.apply_gradient(&gsum, data.len() as u64, 1.0);
        }
        assert!(
            m.misclassification_rate(&data) < 0.05,
            "rate {}",
            m.misclassification_rate(&data)
        );
    }

    #[test]
    fn param_count_layout() {
        assert_eq!(Mlp::param_count(4, 3, 2), 12 + 3 + 6 + 2);
        assert_eq!(tiny().params.len(), 23);
    }

    #[test]
    fn max_param_diff() {
        let a = tiny();
        let mut b = a.clone();
        b.params[5] += 0.25;
        assert!((a.max_param_diff(&b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn random_init_is_deterministic() {
        assert_eq!(Mlp::random(8, 4, 3, 9), Mlp::random(8, 4, 3, 9));
        assert_ne!(Mlp::random(8, 4, 3, 9), Mlp::random(8, 4, 3, 10));
    }
}
