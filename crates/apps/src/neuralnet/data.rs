//! Labelled samples and the synthetic OCR-like generator.

use crate::kmeans::data::normalish;
use pic_mapreduce::ByteSize;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One labelled training vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Feature vector ("pixels" in `[0, 1]`).
    pub x: Vec<f64>,
    /// Class label in `0..classes`.
    pub label: u8,
}

impl ByteSize for Sample {
    fn byte_size(&self) -> u64 {
        4 + 8 * self.x.len() as u64 + 1
    }
}

/// Generate `n` OCR-like vectors: each class has a random prototype in
/// `[0, 1]^dim` (a blurred glyph), samples are the prototype plus Gaussian
/// pixel noise of `sigma`, clamped to `[0, 1]`. Classes are balanced and
/// interleaved; deterministic per `seed`.
pub fn ocr_like(n: usize, classes: usize, dim: usize, sigma: f64, seed: u64) -> Vec<Sample> {
    let (train, _) = ocr_like_split(n, 0, classes, dim, sigma, seed);
    train
}

/// Generate a training set and a held-out validation set drawn from the
/// *same* class prototypes (different noise). Training on one and
/// validating on the other is only meaningful with shared prototypes.
pub fn ocr_like_split(
    n_train: usize,
    n_valid: usize,
    classes: usize,
    dim: usize,
    sigma: f64,
    seed: u64,
) -> (Vec<Sample>, Vec<Sample>) {
    assert!(classes > 0 && classes <= 256, "label must fit u8");
    assert!(dim > 0, "need at least one feature");
    let mut rng = StdRng::seed_from_u64(seed);
    let prototypes: Vec<Vec<f64>> = (0..classes)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let mut draw = |n: usize| -> Vec<Sample> {
        (0..n)
            .map(|i| {
                let label = (i % classes) as u8;
                let x = prototypes[label as usize]
                    .iter()
                    .map(|&p| (p + sigma * normalish(&mut rng)).clamp(0.0, 1.0))
                    .collect();
                Sample { x, label }
            })
            .collect()
    };
    let train = draw(n_train);
    let valid = draw(n_valid);
    (train, valid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_balanced_and_bounded() {
        let a = ocr_like(100, 10, 16, 0.1, 3);
        let b = ocr_like(100, 10, 16, 0.1, 3);
        assert_eq!(a, b);
        let mut counts = [0usize; 10];
        for s in &a {
            counts[s.label as usize] += 1;
            assert!(s.x.iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert_eq!(s.x.len(), 16);
        }
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn classes_are_separable_with_low_noise() {
        let data = ocr_like(200, 2, 8, 0.02, 5);
        // Same-class pairs should be much closer than cross-class pairs.
        let d = |a: &Sample, b: &Sample| -> f64 {
            a.x.iter().zip(&b.x).map(|(x, y)| (x - y) * (x - y)).sum()
        };
        let same = d(&data[0], &data[2]);
        let cross = d(&data[0], &data[1]);
        assert!(same < cross, "same {same} cross {cross}");
    }

    #[test]
    fn byte_size() {
        let s = Sample {
            x: vec![0.0; 4],
            label: 1,
        };
        assert_eq!(s.byte_size(), 4 + 32 + 1);
    }
}
