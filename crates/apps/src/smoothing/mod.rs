//! Iterative image smoothing (the paper's fifth case study: "a large 40
//! megapixel image was used as the dataset for the image smoother").
//!
//! The iteration is a damped Jacobi sweep of the screened-Poisson
//! smoother: `u' = u + λ·Δu + μ·(f − u)` with Neumann-style boundary
//! handling, where `f` is the noisy input image and `u` the current
//! estimate. The fidelity term `μ` makes the fixed point unique (the
//! "golden" smoothed image), so convergence and error are well defined.
//!
//! * **IC realization**: one map-only MapReduce job per sweep — the
//!   stencil mapper processes one pixel row per record, reading its
//!   neighbour rows from the model. Note the model here is *the image
//!   itself*: this is the paper's extreme large-model workload, where
//!   per-iteration model updates dominate cluster traffic.
//! * **PIC realization**: `partition` cuts the image into horizontal
//!   tile strips (the stencil's dependencies are local, paper §VI.B:
//!   "the image smoothing algorithm is stencil based and clearly the
//!   dependencies are local"); local iterations smooth a strip with its
//!   halo rows frozen; `merge` stitches the strips back together.

mod app;
mod image;

pub use app::SmoothingApp;
pub use image::{noisy_image, Image, PixelRow};
