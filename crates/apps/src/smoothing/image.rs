//! Grayscale images, rows and the noisy-image generator.

use crate::kmeans::data::normalish;
use pic_mapreduce::ByteSize;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A grayscale image in row-major `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    /// Width in pixels.
    pub w: usize,
    /// Height in pixels.
    pub h: usize,
    /// Row-major pixel values.
    pub pix: Vec<f64>,
}

impl Image {
    /// An image of `w × h` filled with `v`.
    pub fn filled(w: usize, h: usize, v: f64) -> Self {
        assert!(w > 0 && h > 0, "image must be non-empty");
        Image {
            w,
            h,
            pix: vec![v; w * h],
        }
    }

    /// Pixel at `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f64 {
        self.pix[y * self.w + x]
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, y: usize) -> &[f64] {
        &self.pix[y * self.w..(y + 1) * self.w]
    }

    /// Largest absolute pixel difference to `other`.
    pub fn max_diff(&self, other: &Image) -> f64 {
        assert_eq!((self.w, self.h), (other.w, other.h), "shape mismatch");
        self.pix
            .iter()
            .zip(&other.pix)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Root-mean-square pixel difference to `other`.
    pub fn rms_diff(&self, other: &Image) -> f64 {
        assert_eq!((self.w, self.h), (other.w, other.h), "shape mismatch");
        let ss: f64 = self
            .pix
            .iter()
            .zip(&other.pix)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (ss / self.pix.len() as f64).sqrt()
    }

    /// The image as one dataset record per (full-width) row.
    pub fn rows(&self) -> Vec<PixelRow> {
        (0..self.h)
            .map(|y| PixelRow {
                y: y as u32,
                x0: 0,
                pix: self.row(y).to_vec(),
            })
            .collect()
    }
}

impl ByteSize for Image {
    fn byte_size(&self) -> u64 {
        8 + 8 + 4 + 8 * self.pix.len() as u64
    }
}

/// One pixel row (or row segment) — the record type of the stencil job.
#[derive(Debug, Clone, PartialEq)]
pub struct PixelRow {
    /// Row index.
    pub y: u32,
    /// Column of the first pixel (0 for full rows; grid tiles carry row
    /// segments).
    pub x0: u32,
    /// Pixel values of the row (segment).
    pub pix: Vec<f64>,
}

impl ByteSize for PixelRow {
    fn byte_size(&self) -> u64 {
        4 + 4 + 4 + 8 * self.pix.len() as u64
    }
}

/// Generate a noisy test image: a smooth radial gradient plus blocky
/// structure plus Gaussian pixel noise — enough structure that smoothing
/// is visible, enough noise that it matters. Deterministic per `seed`.
pub fn noisy_image(w: usize, h: usize, noise: f64, seed: u64) -> Image {
    assert!(w > 1 && h > 1, "stencil needs at least 2×2");
    let mut rng = StdRng::seed_from_u64(seed);
    let cx = w as f64 / 2.0;
    let cy = h as f64 / 2.0;
    let rmax = (cx * cx + cy * cy).sqrt();
    let pix = (0..w * h)
        .map(|i| {
            let x = (i % w) as f64;
            let y = (i / w) as f64;
            let r = ((x - cx).powi(2) + (y - cy).powi(2)).sqrt() / rmax;
            let blocks = if ((x as usize / 8) + (y as usize / 8)).is_multiple_of(2) {
                0.15
            } else {
                -0.15
            };
            (0.5 + 0.4 * (1.0 - r) + blocks + noise * normalish(&mut rng)).clamp(0.0, 1.0)
        })
        .collect();
    Image { w, h, pix }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_bounded() {
        let a = noisy_image(32, 24, 0.05, 9);
        let b = noisy_image(32, 24, 0.05, 9);
        assert_eq!(a, b);
        assert!(a.pix.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(a.pix.len(), 32 * 24);
    }

    #[test]
    fn rows_roundtrip() {
        let img = noisy_image(16, 8, 0.0, 1);
        let rows = img.rows();
        assert_eq!(rows.len(), 8);
        for (y, r) in rows.iter().enumerate() {
            assert_eq!(r.y as usize, y);
            assert_eq!(r.pix, img.row(y));
        }
    }

    #[test]
    fn diffs() {
        let a = Image::filled(4, 4, 0.5);
        let mut b = a.clone();
        b.pix[5] = 0.9;
        assert!((a.max_diff(&b) - 0.4).abs() < 1e-12);
        assert!(a.rms_diff(&b) > 0.0 && a.rms_diff(&b) < 0.4);
        assert_eq!(a.max_diff(&a), 0.0);
    }

    #[test]
    fn byte_sizes() {
        let img = Image::filled(10, 5, 0.0);
        assert_eq!(img.byte_size(), 8 + 8 + 4 + 400);
        let row = PixelRow {
            y: 0,
            x0: 0,
            pix: vec![0.0; 10],
        };
        assert_eq!(row.byte_size(), 4 + 4 + 4 + 80);
    }
}
