//! The image-smoothing [`IterativeApp`] / [`PicApp`] implementation.

use super::image::{Image, PixelRow};
use pic_core::prelude::*;
use pic_mapreduce::{Dataset, Engine, MapContext, Mapper};

/// Stencil mapper: processes one row `y` of the *input* image `f` and
/// emits the updated row of `u` computed from `u`'s rows `y−1..=y+1`
/// (replicate boundary).
struct StencilMapper<'a> {
    u: &'a Image,
    lambda: f64,
    mu: f64,
}

impl Mapper for StencilMapper<'_> {
    type In = PixelRow;
    type K = u32;
    type V = Vec<f64>;

    fn map(&self, row: &PixelRow, ctx: &mut MapContext<u32, Vec<f64>>) {
        let y = row.y as usize;
        let up = self.u.row(y.saturating_sub(1));
        let mid = self.u.row(y);
        let down = self.u.row((y + 1).min(self.u.h - 1));
        ctx.emit(
            row.y,
            stencil_row(up, mid, down, &row.pix, self.lambda, self.mu),
        );
    }
}

/// One damped-Jacobi screened-Poisson update of a row:
/// `u' = u + λ·Δu + μ·(f − u)` with replicate boundary in x.
fn stencil_row(up: &[f64], mid: &[f64], down: &[f64], f: &[f64], lambda: f64, mu: f64) -> Vec<f64> {
    let w = mid.len();
    (0..w)
        .map(|x| {
            let left = mid[x.saturating_sub(1)];
            let right = mid[(x + 1).min(w - 1)];
            let lap = up[x] + down[x] + left + right - 4.0 * mid[x];
            mid[x] + lambda * lap + mu * (f[x] - mid[x])
        })
        .collect()
}

/// Screened-Poisson image smoothing; the model is the image estimate `u`.
pub struct SmoothingApp {
    /// Image width.
    pub w: usize,
    /// Image height.
    pub h: usize,
    /// Diffusion coefficient λ (stability needs `4λ + μ ≤ 1`).
    pub lambda: f64,
    /// Data-fidelity coefficient μ (> 0 makes the fixed point unique).
    pub mu: f64,
    /// Convergence threshold on the largest pixel change.
    pub threshold: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Reference (fully converged) image for the error metric.
    pub reference: Option<Image>,
    /// Observed (noisy) input image `f`; enables the sweep-residual
    /// quality probe and the error fallback when no reference is set.
    pub observed: Option<Image>,
    parts: usize,
    /// Tile columns; 1 = horizontal strips (the default), >1 = a 2-D
    /// tile grid, which shrinks each sub-problem's halo perimeter.
    cols: usize,
}

/// Split `len` into `n` near-equal contiguous ranges; range `i`.
fn even_range(len: usize, n: usize, i: usize) -> std::ops::Range<usize> {
    let base = len / n;
    let rem = len % n;
    let start = i * base + i.min(rem);
    start..start + base + usize::from(i < rem)
}

impl SmoothingApp {
    /// A smoother for `w × h` images in `parts` horizontal strips.
    pub fn new(w: usize, h: usize, parts: usize, threshold: f64) -> Self {
        Self::new_grid(w, h, parts, 1, threshold)
    }

    /// A smoother with a 2-D tile grid: `parts` tiles in `cols` columns
    /// (`parts % cols == 0`). Grid tiles halve the halo perimeter per
    /// pixel relative to strips once tiles are roughly square — the
    /// natural refinement of the paper's rack-sized sub-problems.
    ///
    /// # Panics
    /// Panics on a geometry that cannot tile the image.
    pub fn new_grid(w: usize, h: usize, parts: usize, cols: usize, threshold: f64) -> Self {
        assert!(
            cols > 0 && parts > 0 && parts.is_multiple_of(cols),
            "parts must be a cols multiple"
        );
        let rows = parts / cols;
        assert!(rows <= h && cols <= w, "more tiles than pixels");
        let app = SmoothingApp {
            w,
            h,
            lambda: 0.2,
            mu: 0.1,
            threshold,
            max_iterations: 400,
            reference: None,
            observed: None,
            parts,
            cols,
        };
        assert!(4.0 * app.lambda + app.mu <= 1.0, "unstable stencil");
        app
    }

    /// Attach the converged reference image.
    pub fn with_reference(mut self, reference: Image) -> Self {
        self.reference = Some(reference);
        self
    }

    /// Attach the observed input image `f`, enabling the sweep-residual
    /// quality indices (and the error metric when no reference is set).
    pub fn with_observed(mut self, observed: Image) -> Self {
        self.observed = Some(observed);
        self
    }

    /// Rows owned by strip `p` (strip layout view of [`Self::tile_rect`]).
    pub fn strip_range(&self, p: usize) -> std::ops::Range<usize> {
        self.tile_rect(p).1
    }

    /// The pixel rectangle owned by tile `p`: `(x range, y range)`.
    pub fn tile_rect(&self, p: usize) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        assert!(p < self.parts, "tile out of range");
        let grid_rows = self.parts / self.cols;
        let pr = p / self.cols;
        let pc = p % self.cols;
        (
            even_range(self.w, self.cols, pc),
            even_range(self.h, grid_rows, pr),
        )
    }

    /// Tile `p`'s rectangle expanded by its halo (clamped at image
    /// borders): the sub-model geometry.
    pub fn halo_rect(&self, p: usize) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        let (xr, yr) = self.tile_rect(p);
        (
            xr.start.saturating_sub(1)..(xr.end + 1).min(self.w),
            yr.start.saturating_sub(1)..(yr.end + 1).min(self.h),
        )
    }

    /// One full sequential sweep (used by tests and the reference solver).
    pub fn sequential_sweep(&self, u: &Image, f: &Image) -> Image {
        let mut out = Image::filled(self.w, self.h, 0.0);
        for y in 0..self.h {
            let up = u.row(y.saturating_sub(1));
            let mid = u.row(y);
            let down = u.row((y + 1).min(self.h - 1));
            let new = stencil_row(up, mid, down, f.row(y), self.lambda, self.mu);
            out.pix[y * self.w..(y + 1) * self.w].copy_from_slice(&new);
        }
        out
    }

    /// Solve sequentially to tight convergence — the golden image.
    pub fn solve_reference(&self, f: &Image, cap: usize) -> Image {
        let mut u = f.clone();
        for _ in 0..cap {
            let next = self.sequential_sweep(&u, f);
            let done = next.max_diff(&u) < self.threshold;
            u = next;
            if done {
                break;
            }
        }
        u
    }
}

impl IterativeApp for SmoothingApp {
    type Record = PixelRow;
    type Model = Image;

    fn name(&self) -> &str {
        "smoothing"
    }

    fn iterate(
        &self,
        engine: &Engine,
        data: &Dataset<PixelRow>,
        model: &Image,
        scope: &IterScope,
    ) -> Image {
        // Map-only stencil sweep; the (large) model write is charged by
        // the driver after this returns.
        let res = engine.run_map_only(
            &scope.job("stencil"),
            data,
            &StencilMapper {
                u: model,
                lambda: self.lambda,
                mu: self.mu,
            },
        );
        let mut next = model.clone();
        for (y, row) in res.output {
            let y = y as usize;
            next.pix[y * self.w..(y + 1) * self.w].copy_from_slice(&row);
        }
        next
    }

    fn converged(&self, prev: &Image, next: &Image) -> bool {
        next.max_diff(prev) < self.threshold
    }

    fn error(&self, model: &Image) -> Option<f64> {
        if let Some(r) = &self.reference {
            return Some(model.rms_diff(r));
        }
        // Reference-free fallback: the RMS change of one damped-Jacobi
        // sweep, zero exactly at the screened-Poisson fixed point.
        self.observed
            .as_ref()
            .map(|f| self.sequential_sweep(model, f).rms_diff(model))
    }

    fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    fn model_fanout(&self) -> pic_core::app::ModelFanout {
        // Each stencil mapper needs only its rows ± one halo row.
        pic_core::app::ModelFanout::Partitioned
    }
}

impl QualityProbe for SmoothingApp {
    /// Per-pixel delta of one sweep — max and RMS of `|u' − u|` — the
    /// distance from the fixed point, computable without a reference.
    fn quality(&self, model: &Image) -> QualitySample {
        let mut indices = Vec::new();
        if let Some(f) = &self.observed {
            let next = self.sequential_sweep(model, f);
            indices.push(("pixel_delta_max", next.max_diff(model)));
            indices.push(("pixel_delta_rms", next.rms_diff(model)));
        }
        QualitySample {
            objective: self.error(model),
            indices,
        }
    }
}

impl PicApp for SmoothingApp {
    fn partition_data(&self, data: &Dataset<PixelRow>, parts: usize) -> Vec<Vec<PixelRow>> {
        assert_eq!(
            parts, self.parts,
            "PicOptions.partitions must match the app"
        );
        // Each tile gets the segments of `f` it owns; full rows for
        // strips, row slices for grid tiles.
        let mut out: Vec<Vec<PixelRow>> = (0..parts).map(|_| Vec::new()).collect();
        for row in data.iter_records() {
            debug_assert_eq!(row.x0, 0, "input rows are full-width");
            for (p, tile) in out.iter_mut().enumerate() {
                let (xr, yr) = self.tile_rect(p);
                if yr.contains(&(row.y as usize)) {
                    tile.push(PixelRow {
                        y: row.y,
                        x0: xr.start as u32,
                        pix: row.pix[xr].to_vec(),
                    });
                }
            }
        }
        out
    }

    fn split_model(&self, model: &Image, parts: usize) -> Vec<Image> {
        assert_eq!(parts, self.parts, "partition count mismatch");
        // Each tile plus one frozen halo pixel on every interior side.
        (0..parts)
            .map(|p| {
                let (xh, yh) = self.halo_rect(p);
                let mut pix = Vec::with_capacity(xh.len() * yh.len());
                for y in yh.clone() {
                    pix.extend_from_slice(&model.pix[y * self.w + xh.start..y * self.w + xh.end]);
                }
                Image {
                    w: xh.len(),
                    h: yh.len(),
                    pix,
                }
            })
            .collect()
    }

    fn merge(&self, subs: &[Image], _prev: &Image) -> Image {
        // Stitch the owned rectangles (skip the halos).
        let mut out = Image::filled(self.w, self.h, 0.0);
        for (p, sub) in subs.iter().enumerate() {
            let (xr, yr) = self.tile_rect(p);
            let (xh, yh) = self.halo_rect(p);
            for y in yr.clone() {
                let ly = y - yh.start;
                let src = ly * sub.w + (xr.start - xh.start);
                out.pix[y * self.w + xr.start..y * self.w + xr.end]
                    .copy_from_slice(&sub.pix[src..src + xr.len()]);
            }
        }
        out
    }

    fn solve_local(
        &self,
        part: usize,
        records: &[PixelRow],
        model: &Image,
        cap: usize,
    ) -> (Image, usize) {
        let (xr, _) = self.tile_rect(part);
        let (xh, yh) = self.halo_rect(part);
        let mut u = model.clone();
        debug_assert_eq!((u.w, u.h), (xh.len(), yh.len()));
        // Whether each side of the sub-image is a frozen halo (interior
        // cut) or the true image border (replicate boundary).
        let x_off = xr.start - xh.start;
        for it in 1..=cap {
            let mut max_change = 0.0f64;
            let mut updates: Vec<(usize, Vec<f64>)> = Vec::with_capacity(records.len());
            for rec in records {
                let ly = rec.y as usize - yh.start;
                debug_assert_eq!(rec.x0 as usize, xr.start);
                debug_assert_eq!(rec.pix.len(), xr.len());
                let mut new = Vec::with_capacity(xr.len());
                for (k, &fv) in rec.pix.iter().enumerate() {
                    let lx = x_off + k;
                    let mid = u.get(lx, ly);
                    let up = u.get(lx, ly.saturating_sub(1));
                    let down = u.get(lx, (ly + 1).min(u.h - 1));
                    let left = u.get(lx.saturating_sub(1), ly);
                    let right = u.get((lx + 1).min(u.w - 1), ly);
                    let lap = up + down + left + right - 4.0 * mid;
                    let v = mid + self.lambda * lap + self.mu * (fv - mid);
                    max_change = max_change.max((v - mid).abs());
                    new.push(v);
                }
                updates.push((ly, new));
            }
            for (ly, new) in updates {
                u.pix[ly * u.w + x_off..ly * u.w + x_off + new.len()].copy_from_slice(&new);
            }
            if max_change < self.threshold {
                return (u, it);
            }
        }
        (u, cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smoothing::image::noisy_image;
    use pic_simnet::ClusterSpec;

    fn setup(w: usize, h: usize, parts: usize) -> (SmoothingApp, Image) {
        let f = noisy_image(w, h, 0.08, 13);
        (SmoothingApp::new(w, h, parts, 1e-5), f)
    }

    #[test]
    fn mr_iteration_equals_sequential_sweep() {
        let (app, f) = setup(24, 18, 3);
        let engine = Engine::new(ClusterSpec::small());
        let data = Dataset::create(&engine, "/sm/eq", f.rows(), 6);
        let scope = IterScope::cluster(6, pic_mapreduce::Timing::default_analytic(), 4);
        let via_mr = app.iterate(&engine, &data, &f, &scope);
        let via_seq = app.sequential_sweep(&f, &f);
        assert!(via_mr.max_diff(&via_seq) < 1e-12);
    }

    #[test]
    fn smoothing_reduces_roughness() {
        let (app, f) = setup(32, 32, 4);
        let smooth = app.solve_reference(&f, 500);
        let roughness = |img: &Image| -> f64 {
            let mut acc = 0.0;
            for y in 0..img.h {
                for x in 1..img.w {
                    acc += (img.get(x, y) - img.get(x - 1, y)).powi(2);
                }
            }
            acc
        };
        assert!(roughness(&smooth) < roughness(&f) * 0.8);
    }

    #[test]
    fn ic_converges_to_reference() {
        let (app, f) = setup(20, 16, 4);
        let reference = app.solve_reference(&f, 1000);
        let engine = Engine::new(ClusterSpec::small());
        let data = Dataset::create(&engine, "/sm/ic", f.rows(), 6);
        let app = app.with_reference(reference.clone());
        let r = run_ic(&engine, &app, &data, f.clone(), &IcOptions::default());
        assert!(r.converged);
        assert!(r.final_model.rms_diff(&reference) < 1e-3);
    }

    #[test]
    fn pic_converges_to_the_same_image() {
        let (app, f) = setup(24, 24, 4);
        let reference = app.solve_reference(&f, 1000);
        let engine = Engine::new(ClusterSpec::small());
        let data = Dataset::create(&engine, "/sm/pic", f.rows(), 6);
        let app = app.with_reference(reference.clone());
        let r = run_pic(
            &engine,
            &app,
            &data,
            f.clone(),
            &PicOptions {
                partitions: 4,
                ..Default::default()
            },
        );
        assert!(r.topoff_converged);
        assert!(
            r.final_model.rms_diff(&reference) < 1e-3,
            "rms {}",
            r.final_model.rms_diff(&reference)
        );
    }

    #[test]
    fn split_model_carries_halos() {
        let (app, f) = setup(10, 12, 3); // strips of 4 rows
        let subs = app.split_model(&f, 3);
        assert_eq!(subs[0].h, 5, "top strip: 4 rows + bottom halo");
        assert_eq!(subs[1].h, 6, "middle strip: 4 rows + both halos");
        assert_eq!(subs[2].h, 5, "bottom strip: 4 rows + top halo");
        // Halo contents come from the neighbour strip.
        assert_eq!(subs[1].row(0), f.row(3));
        assert_eq!(subs[1].row(5), f.row(8));
    }

    #[test]
    fn merge_stitches_strips_exactly() {
        let (app, f) = setup(8, 9, 3);
        let subs = app.split_model(&f, 3);
        let merged = app.merge(&subs, &f);
        assert!(merged.max_diff(&f) < 1e-15, "split+merge must be identity");
    }

    #[test]
    fn local_solve_freezes_halos() {
        let (app, f) = setup(12, 12, 3);
        let engine = Engine::new(ClusterSpec::small());
        let data = Dataset::create(&engine, "/sm/halo", f.rows(), 4);
        let parts = app.partition_data(&data, 3);
        let subs = app.split_model(&f, 3);
        let (solved, iters) = app.solve_local(1, &parts[1], &subs[1], 50);
        assert!(iters >= 1);
        assert_eq!(solved.row(0), subs[1].row(0), "top halo frozen");
        assert_eq!(
            solved.row(solved.h - 1),
            subs[1].row(subs[1].h - 1),
            "bottom halo frozen"
        );
        assert_ne!(solved.row(2), subs[1].row(2), "owned rows updated");
    }

    #[test]
    fn model_is_the_large_object() {
        // The smoothing model (the image) dwarfs the other apps' models —
        // the property the paper's model-update bottleneck needs.
        use pic_mapreduce::ByteSize;
        let (_, f) = setup(64, 64, 4);
        assert!(f.byte_size() > 30_000);
    }
}

#[cfg(test)]
mod grid_tests {
    use super::*;
    use crate::smoothing::image::noisy_image;
    use pic_mapreduce::Dataset;
    use pic_mapreduce::Engine;
    use pic_simnet::ClusterSpec;

    #[test]
    fn grid_tiles_cover_the_image_disjointly() {
        let app = SmoothingApp::new_grid(20, 12, 6, 3, 1e-5);
        let mut covered = vec![false; 20 * 12];
        for p in 0..6 {
            let (xr, yr) = app.tile_rect(p);
            for y in yr {
                for x in xr.clone() {
                    assert!(!covered[y * 20 + x], "pixel ({x},{y}) covered twice");
                    covered[y * 20 + x] = true;
                }
            }
        }
        assert!(
            covered.into_iter().all(|c| c),
            "every pixel owned by a tile"
        );
    }

    #[test]
    fn grid_split_then_merge_is_identity() {
        let app = SmoothingApp::new_grid(18, 18, 9, 3, 1e-5);
        let f = noisy_image(18, 18, 0.05, 3);
        let subs = app.split_model(&f, 9);
        let merged = app.merge(&subs, &f);
        assert!(merged.max_diff(&f) < 1e-15);
    }

    #[test]
    fn grid_halos_shrink_sub_model_bytes_vs_strips() {
        use pic_mapreduce::ByteSize;
        // 64×64 image, 16 partitions: strips carry full-width halos; a
        // 4×4 grid carries per-tile perimeters — less total halo area.
        let f = noisy_image(64, 64, 0.05, 5);
        let strips = SmoothingApp::new(64, 64, 16, 1e-5);
        let grid = SmoothingApp::new_grid(64, 64, 16, 4, 1e-5);
        let strip_bytes: u64 = strips
            .split_model(&f, 16)
            .iter()
            .map(|m| m.byte_size())
            .sum();
        let grid_bytes: u64 = grid.split_model(&f, 16).iter().map(|m| m.byte_size()).sum();
        assert!(
            grid_bytes < strip_bytes,
            "grid {grid_bytes} should carry less halo than strips {strip_bytes}"
        );
    }

    #[test]
    fn grid_pic_converges_to_the_same_image_as_strips() {
        let f = noisy_image(24, 24, 0.08, 7);
        let reference = SmoothingApp::new(24, 24, 4, 1e-6).solve_reference(&f, 2000);
        for app in [
            SmoothingApp::new(24, 24, 4, 1e-6),
            SmoothingApp::new_grid(24, 24, 4, 2, 1e-6),
        ] {
            let engine = Engine::new(ClusterSpec::small());
            let data = Dataset::create(&engine, "/sm/grid", f.rows(), 8);
            let r = run_pic(
                &engine,
                &app,
                &data,
                f.clone(),
                &PicOptions {
                    partitions: 4,
                    ..Default::default()
                },
            );
            assert!(r.topoff_converged);
            assert!(
                r.final_model.rms_diff(&reference) < 1e-4,
                "layout-independent fixed point (rms {})",
                r.final_model.rms_diff(&reference)
            );
        }
    }

    #[test]
    #[should_panic(expected = "cols multiple")]
    fn ragged_grid_rejected() {
        SmoothingApp::new_grid(16, 16, 7, 3, 1e-5);
    }
}
