//! The K-means [`IterativeApp`] / [`PicApp`] implementation.

use super::data::Point;
use super::metrics::centroid_displacement;
use super::mr::{lloyd_step, AssignMapper, AverageReducer, Centroids, SumCombiner};
use pic_core::prelude::*;
use pic_mapreduce::{Dataset, Engine};

/// How sub-problem centroid sets are merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeStrategy {
    /// Plain average of corresponding centroids — what the paper's case
    /// study uses ("Our merge function identifies corresponding centroid
    /// values from each partition and averages them").
    #[default]
    Average,
    /// Average weighted by each partition's assigned point count — the
    /// ablation variant (exactly recovers the global Lloyd update when
    /// assignments agree).
    WeightedAverage,
}

/// K-means clustering with `k` centroids over points of dimension `dim`.
pub struct KMeansApp {
    /// Number of clusters.
    pub k: usize,
    /// Point dimensionality.
    pub dim: usize,
    /// Convergence threshold on the largest centroid displacement.
    pub threshold: f64,
    /// Looser threshold ending the best-effort phase (paper §III.B: the
    /// developer "can specify a much looser criterion to quickly
    /// terminate the best-effort phase"). At small partition sizes the
    /// merged model keeps jittering by sampling noise, so insisting on
    /// the tight criterion would waste best-effort rounds polishing what
    /// the top-off phase polishes anyway.
    pub be_threshold: f64,
    /// Merge strategy for the PIC best-effort phase.
    pub merge_strategy: MergeStrategy,
    /// Seed for the random data partitioner.
    pub partition_seed: u64,
    /// Reference model for error trajectories (usually the converged
    /// sequential solution); `None` disables the error metric.
    pub reference: Option<Centroids>,
    /// Evaluation sample + its reference SSE for the quality-based error
    /// metric (set via [`KMeansApp::with_eval_sample`]); preferred over
    /// raw centroid distance when present, because K-means runs from the
    /// same init can land in different (equally good) local optima.
    pub eval_sample: Option<(Vec<Point>, f64)>,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl KMeansApp {
    /// A K-means app with the paper's defaults.
    pub fn new(k: usize, dim: usize, threshold: f64) -> Self {
        KMeansApp {
            k,
            dim,
            threshold,
            be_threshold: threshold * 10.0,
            merge_strategy: MergeStrategy::Average,
            partition_seed: 0x5eed,
            reference: None,
            eval_sample: None,
            max_iterations: 120,
        }
    }

    /// Attach a reference solution for error tracking.
    pub fn with_reference(mut self, reference: Centroids) -> Self {
        self.reference = Some(reference);
        self
    }

    /// Use a specific merge strategy.
    pub fn with_merge(mut self, s: MergeStrategy) -> Self {
        self.merge_strategy = s;
        self
    }

    /// Track error as *relative SSE excess* over `reference` on `sample`:
    /// `sse(model)/sse(reference) − 1`. Zero means reference-equivalent
    /// clustering quality, regardless of which local optimum was reached.
    pub fn with_eval_sample(mut self, sample: Vec<Point>, reference: &Centroids) -> Self {
        let sse_ref = super::metrics::sse(&sample, reference).max(1e-30);
        self.eval_sample = Some((sample, sse_ref));
        self
    }

    /// Solve sequentially to convergence — the "sequential implementation"
    /// the paper uses as the reference for its error metric (§VI.A).
    pub fn solve_reference(&self, points: &[Point], init: &Centroids, cap: usize) -> Centroids {
        let mut m = init.clone();
        for _ in 0..cap {
            let next = lloyd_step(points, &m);
            let done = next.max_displacement(&m) < self.threshold;
            m = next;
            if done {
                break;
            }
        }
        m
    }
}

impl IterativeApp for KMeansApp {
    type Record = Point;
    type Model = Centroids;

    fn name(&self) -> &str {
        "kmeans"
    }

    fn iterate(
        &self,
        engine: &Engine,
        data: &Dataset<Point>,
        model: &Centroids,
        scope: &IterScope,
    ) -> Centroids {
        let mapper = AssignMapper { model };
        let res = engine.run_with_combiner(
            &scope.job("assign"),
            data,
            &mapper,
            &SumCombiner,
            &AverageReducer,
        );
        // Fold reducer output into the next model; clusters that received
        // no points keep their previous centroid.
        let mut next = Centroids::new(model.coords.clone());
        for (cluster, coords, count) in res.output {
            let c = cluster as usize;
            assert!(c < self.k, "cluster id out of range");
            next.coords[c] = coords;
            next.counts[c] = count;
        }
        next
    }

    fn converged(&self, prev: &Centroids, next: &Centroids) -> bool {
        next.max_displacement(prev) < self.threshold
    }

    fn error(&self, model: &Centroids) -> Option<f64> {
        if let Some((sample, sse_ref)) = &self.eval_sample {
            return Some((super::metrics::sse(sample, model) / sse_ref - 1.0).max(0.0));
        }
        self.reference
            .as_ref()
            .map(|r| centroid_displacement(model, r))
    }

    fn max_iterations(&self) -> usize {
        self.max_iterations
    }
}

impl QualityProbe for KMeansApp {
    /// WCSS (the K-means objective, paper Fig. 12(b)) and the Jagota
    /// index (Table III) over the evaluation sample, when one is set.
    fn quality(&self, model: &Centroids) -> QualitySample {
        let mut indices = Vec::new();
        if let Some((sample, _)) = &self.eval_sample {
            indices.push(("wcss", super::metrics::sse(sample, model)));
            indices.push(("jagota", super::metrics::jagota_index(sample, model)));
        }
        QualitySample {
            objective: self.error(model),
            indices,
        }
    }
}

impl PicApp for KMeansApp {
    fn partition_data(&self, data: &Dataset<Point>, parts: usize) -> Vec<Vec<Point>> {
        partition::random(data.iter_records().cloned(), parts, self.partition_seed)
    }

    fn split_model(&self, model: &Centroids, parts: usize) -> Vec<Centroids> {
        // Copy-style partitioning: every sub-problem clusters its points
        // against the full centroid set (paper Fig. 6).
        vec![model.clone(); parts]
    }

    fn merge(&self, subs: &[Centroids], prev: &Centroids) -> Centroids {
        assert!(!subs.is_empty(), "no sub-models to merge");
        let k = prev.k();
        let dim = self.dim;
        // Correspondence is index identity: every sub-problem started this
        // best-effort round from the same model copy, so centroid i in
        // each sub-model descends from prev's centroid i — exactly the
        // correspondence the paper's merge "identifies". (Greedy
        // re-matching by distance is available in
        // `metrics::match_centroids` but mis-pairs drifted centroids and
        // corrupts the average, so the merge does not use it.)
        let mut sums = vec![vec![0.0; dim]; k];
        let mut weights = vec![0.0; k];
        let mut counts = vec![0u64; k];
        for sub in subs {
            assert_eq!(sub.k(), k, "sub-model size mismatch");
            for i in 0..k {
                let w = match self.merge_strategy {
                    MergeStrategy::Average => {
                        // Sub-problems whose cluster i is empty kept the
                        // incoming centroid; averaging them in would drag
                        // the merged centroid back toward the stale value.
                        if sub.counts[i] == 0 {
                            0.0
                        } else {
                            1.0
                        }
                    }
                    MergeStrategy::WeightedAverage => sub.counts[i] as f64,
                };
                counts[i] += sub.counts[i];
                if w == 0.0 {
                    continue;
                }
                for (s, x) in sums[i].iter_mut().zip(&sub.coords[i]) {
                    *s += w * x;
                }
                weights[i] += w;
            }
        }
        let coords = sums
            .into_iter()
            .enumerate()
            .map(|(i, mut s)| {
                if weights[i] == 0.0 {
                    prev.coords[i].clone()
                } else {
                    for x in &mut s {
                        *x /= weights[i];
                    }
                    s
                }
            })
            .collect();
        Centroids { coords, counts }
    }

    fn be_converged(&self, prev: &Centroids, next: &Centroids) -> bool {
        next.max_displacement(prev) < self.be_threshold
    }

    fn max_be_iterations(&self) -> usize {
        // The paper's Table I observes 3–5 best-effort iterations; beyond
        // that the merged model can limit-cycle at the sampling-noise
        // amplitude of small partitions without further real refinement,
        // so budget the phase rather than chase the oscillation.
        6
    }

    fn solve_local(
        &self,
        _part: usize,
        records: &[Point],
        model: &Centroids,
        cap: usize,
    ) -> (Centroids, usize) {
        // "Each sub-problem performs as many local iterations as necessary
        // to obtain a converged partial model. The convergence criterion
        // ... is the same as the criterion used in the IC implementation."
        let mut m = model.clone();
        for it in 1..=cap {
            let next = lloyd_step(records, &m);
            let done = next.max_displacement(&m) < self.threshold;
            m = next;
            if done {
                return (m, it);
            }
        }
        (m, cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::data::gaussian_mixture;
    use pic_simnet::ClusterSpec;

    fn well_separated(n: usize) -> (Vec<Point>, Centroids) {
        let pts = gaussian_mixture(n, 4, 2, 100.0, 1.0, 11);
        let init = Centroids::new(super::super::data::init_random_centroids(4, 2, 100.0, 3));
        (pts, init)
    }

    #[test]
    fn ic_kmeans_converges_on_engine() {
        let engine = Engine::new(ClusterSpec::small());
        let (pts, init) = well_separated(400);
        let data = Dataset::create(&engine, "/km/ic", pts, 6);
        let app = KMeansApp::new(4, 2, 1e-3);
        let r = run_ic(&engine, &app, &data, init, &IcOptions::default());
        assert!(
            r.converged,
            "K-means should converge in {} iters",
            app.max_iterations
        );
        assert!(r.iterations >= 2);
    }

    #[test]
    fn mr_iteration_equals_sequential_lloyd() {
        // The MapReduce job must be numerically equivalent to one
        // sequential Lloyd step — the engine adds no approximation.
        let engine = Engine::new(ClusterSpec::small());
        let (pts, init) = well_separated(300);
        let data = Dataset::create(&engine, "/km/eq", pts.clone(), 5);
        let app = KMeansApp::new(4, 2, 1e-3);
        let scope = IterScope::cluster(6, pic_mapreduce::Timing::default_analytic(), 4);
        let via_mr = app.iterate(&engine, &data, &init, &scope);
        let via_seq = lloyd_step(&pts, &init);
        for (a, b) in via_mr.coords.iter().zip(&via_seq.coords) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-9, "mr {x} vs seq {y}");
            }
        }
        assert_eq!(via_mr.counts, via_seq.counts);
    }

    #[test]
    fn pic_kmeans_matches_ic_quality() {
        // K-means is non-convex, so PIC and the sequential reference may
        // settle in different local optima; what the paper claims (and
        // what we assert) is comparable clustering *quality* — its §VI
        // uses the Jagota index and finds ≤3% difference. We allow a
        // modest band on SSE at this tiny test scale.
        let engine = Engine::new(ClusterSpec::small());
        let (pts, init) = well_separated(400);
        let app = KMeansApp::new(4, 2, 1e-3);
        let reference = app.solve_reference(&pts, &init, 200);
        let ref_sse = crate::kmeans::metrics::sse(&pts, &reference);
        let data = Dataset::create(&engine, "/km/pic", pts.clone(), 6);
        let app = app.with_reference(reference.clone());
        let r = run_pic(
            &engine,
            &app,
            &data,
            init,
            &PicOptions {
                partitions: 4,
                ..Default::default()
            },
        );
        assert!(r.topoff_converged);
        let pic_sse = crate::kmeans::metrics::sse(&pts, &r.final_model);
        assert!(
            pic_sse <= ref_sse * 1.5 + 1e-9,
            "PIC SSE {pic_sse} should be close to reference SSE {ref_sse}"
        );
    }

    #[test]
    fn merge_average_of_identical_submodels_is_identity() {
        let app = KMeansApp::new(2, 2, 1e-3);
        let m = Centroids::new(vec![vec![1.0, 2.0], vec![5.0, 6.0]]);
        let merged = app.merge(&[m.clone(), m.clone(), m.clone()], &m);
        for (a, b) in merged.coords.iter().zip(&m.coords) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn weighted_merge_respects_counts() {
        let app = KMeansApp::new(1, 1, 1e-3).with_merge(MergeStrategy::WeightedAverage);
        let prev = Centroids::new(vec![vec![0.0]]);
        let a = Centroids {
            coords: vec![vec![0.0]],
            counts: vec![1],
        };
        let b = Centroids {
            coords: vec![vec![10.0]],
            counts: vec![3],
        };
        let merged = app.merge(&[a, b], &prev);
        assert!((merged.coords[0][0] - 7.5).abs() < 1e-12);
    }

    #[test]
    fn solve_local_converges_and_reports_iterations() {
        let (pts, init) = well_separated(200);
        let app = KMeansApp::new(4, 2, 1e-3);
        let (m, iters) = app.solve_local(0, &pts, &init, 100);
        assert!(iters < 100, "should converge before cap");
        let next = lloyd_step(&pts, &m);
        assert!(
            next.max_displacement(&m) < 1e-3,
            "claimed convergence is real"
        );
    }
}
