//! The K-means model and its MapReduce step (paper Fig. 1(b)).

use super::data::Point;
use pic_mapreduce::{ByteSize, Combiner, MapContext, Mapper, ReduceContext, Reducer};

/// The K-means model: `k` centroids plus the point count last assigned to
/// each (counts ride along so the weighted-merge ablation has them; the
/// paper's model is the centroid set).
#[derive(Debug, Clone, PartialEq)]
pub struct Centroids {
    /// Centroid coordinates, `k × dim`.
    pub coords: Vec<Vec<f64>>,
    /// Points assigned to each centroid in the iteration that produced it
    /// (zero for a freshly initialized model).
    pub counts: Vec<u64>,
}

impl Centroids {
    /// A model from raw centroid coordinates with zeroed counts.
    pub fn new(coords: Vec<Vec<f64>>) -> Self {
        let k = coords.len();
        Centroids {
            coords,
            counts: vec![0; k],
        }
    }

    /// Number of centroids.
    pub fn k(&self) -> usize {
        self.coords.len()
    }

    /// Index of the centroid nearest to `p`.
    ///
    /// # Panics
    /// Panics if the model has no centroids.
    #[inline]
    pub fn nearest(&self, p: &Point) -> usize {
        assert!(!self.coords.is_empty(), "model has no centroids");
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, c) in self.coords.iter().enumerate() {
            let d = p.dist2(c);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Largest per-centroid displacement between two models — the paper's
    /// convergence quantity.
    pub fn max_displacement(&self, other: &Centroids) -> f64 {
        assert_eq!(self.k(), other.k(), "model size mismatch");
        self.coords
            .iter()
            .zip(&other.coords)
            .map(|(a, b)| {
                a.iter()
                    .zip(b)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt()
            })
            .fold(0.0, f64::max)
    }
}

impl ByteSize for Centroids {
    fn byte_size(&self) -> u64 {
        // k centroids of dim doubles + k counts.
        4 + self
            .coords
            .iter()
            .map(|c| 4 + 8 * c.len() as u64)
            .sum::<u64>()
            + 8 * self.counts.len() as u64
    }
}

/// Partial aggregate shuffled from map to reduce: coordinate sums plus a
/// count (the classic K-means combiner-friendly value).
pub type PartialSum = (Vec<f64>, u64);

/// Mapper: assign each point to its nearest centroid, emit
/// `(cluster, (coords, 1))` — Fig. 1(b)'s
/// `emit(closest_centroid(d_i, m), d_i)` in pre-aggregated form.
pub struct AssignMapper<'a> {
    /// Current model.
    pub model: &'a Centroids,
}

impl Mapper for AssignMapper<'_> {
    type In = Point;
    type K = u64;
    type V = PartialSum;

    fn map(&self, p: &Point, ctx: &mut MapContext<u64, PartialSum>) {
        let c = self.model.nearest(p);
        ctx.emit(c as u64, (p.coords.clone(), 1));
    }
}

/// Combiner: sum coordinate vectors and counts per cluster within one map
/// task (the "well-known optimization" the paper grants the baseline).
pub struct SumCombiner;

impl Combiner for SumCombiner {
    type K = u64;
    type V = PartialSum;

    fn combine(&self, _k: &u64, values: &mut Vec<PartialSum>) {
        if values.len() <= 1 {
            return;
        }
        let dim = values[0].0.len();
        let mut sum = vec![0.0; dim];
        let mut count = 0u64;
        for (v, c) in values.iter() {
            for (s, x) in sum.iter_mut().zip(v) {
                *s += x;
            }
            count += c;
        }
        values.clear();
        values.push((sum, count));
    }
}

/// Reducer: average the summed coordinates into the new centroid —
/// Fig. 1(b)'s `reduce(centroid, points) -> updated centroid`.
pub struct AverageReducer;

impl Reducer for AverageReducer {
    type K = u64;
    type V = PartialSum;
    type Out = (u64, Vec<f64>, u64);

    fn reduce(
        &self,
        key: &u64,
        values: &[PartialSum],
        ctx: &mut ReduceContext<(u64, Vec<f64>, u64)>,
    ) {
        let dim = values[0].0.len();
        let mut sum = vec![0.0; dim];
        let mut count = 0u64;
        for (v, c) in values {
            for (s, x) in sum.iter_mut().zip(v) {
                *s += x;
            }
            count += c;
        }
        if count > 0 {
            for s in &mut sum {
                *s /= count as f64;
            }
        }
        ctx.emit((*key, sum, count));
    }
}

/// One sequential Lloyd iteration over `points`: returns the refined
/// model. Clusters that attract no points keep their previous centroid
/// (standard practice; keeps `k` stable). This is the kernel
/// [`super::KMeansApp`]'s `solve_local` runs for PIC's local iterations —
/// numerically identical to one MapReduce iteration.
pub fn lloyd_step(points: &[Point], model: &Centroids) -> Centroids {
    let k = model.k();
    let dim = model.coords.first().map_or(0, Vec::len);
    let mut sums = vec![vec![0.0; dim]; k];
    let mut counts = vec![0u64; k];
    for p in points {
        let c = model.nearest(p);
        for (s, x) in sums[c].iter_mut().zip(&p.coords) {
            *s += x;
        }
        counts[c] += 1;
    }
    let coords = sums
        .into_iter()
        .enumerate()
        .map(|(i, mut s)| {
            if counts[i] == 0 {
                model.coords[i].clone()
            } else {
                for x in &mut s {
                    *x /= counts[i] as f64;
                }
                s
            }
        })
        .collect();
    Centroids { coords, counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(raw: &[[f64; 2]]) -> Vec<Point> {
        raw.iter().map(|c| Point::new(c.to_vec())).collect()
    }

    #[test]
    fn nearest_picks_closest() {
        let m = Centroids::new(vec![vec![0.0, 0.0], vec![10.0, 10.0]]);
        assert_eq!(m.nearest(&Point::new(vec![1.0, 1.0])), 0);
        assert_eq!(m.nearest(&Point::new(vec![9.0, 9.0])), 1);
    }

    #[test]
    fn lloyd_step_two_obvious_clusters() {
        let points = pts(&[[0.0, 0.0], [0.0, 2.0], [10.0, 10.0], [10.0, 12.0]]);
        let m0 = Centroids::new(vec![vec![1.0, 1.0], vec![9.0, 9.0]]);
        let m1 = lloyd_step(&points, &m0);
        assert_eq!(m1.coords[0], vec![0.0, 1.0]);
        assert_eq!(m1.coords[1], vec![10.0, 11.0]);
        assert_eq!(m1.counts, vec![2, 2]);
    }

    #[test]
    fn lloyd_keeps_empty_clusters() {
        let points = pts(&[[0.0, 0.0]]);
        let m0 = Centroids::new(vec![vec![0.0, 0.0], vec![100.0, 100.0]]);
        let m1 = lloyd_step(&points, &m0);
        assert_eq!(m1.coords[1], vec![100.0, 100.0], "empty cluster unchanged");
        assert_eq!(m1.counts[1], 0);
    }

    #[test]
    fn max_displacement_symmetric() {
        let a = Centroids::new(vec![vec![0.0], vec![1.0]]);
        let b = Centroids::new(vec![vec![3.0], vec![1.0]]);
        assert_eq!(a.max_displacement(&b), 3.0);
        assert_eq!(b.max_displacement(&a), 3.0);
    }

    #[test]
    fn combiner_sums() {
        let c = SumCombiner;
        let mut vals = vec![
            (vec![1.0, 2.0], 1),
            (vec![3.0, 4.0], 1),
            (vec![5.0, 6.0], 2),
        ];
        c.combine(&0, &mut vals);
        assert_eq!(vals, vec![(vec![9.0, 12.0], 4)]);
    }

    #[test]
    fn reducer_averages() {
        let r = AverageReducer;
        let mut ctx = ReduceContext::new();
        r.reduce(&3, &[(vec![2.0, 4.0], 2), (vec![4.0, 0.0], 2)], &mut ctx);
        let (out, _) = ctx.into_parts();
        assert_eq!(out, vec![(3, vec![1.5, 1.0], 4)]);
    }

    #[test]
    fn model_byte_size() {
        let m = Centroids::new(vec![vec![0.0; 3]; 100]);
        // 4 + 100*(4+24) + 100*8 = 4 + 2800 + 800
        assert_eq!(m.byte_size(), 3604);
    }
}
