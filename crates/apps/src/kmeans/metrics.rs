//! Clustering quality metrics used in the paper's §VI.

use super::data::Point;
use super::mr::Centroids;

/// The Jagota index the paper uses to compare BE-phase and IC models
/// (its eq. in §VI.A): `Q = Σ_i (1/|C_i|) Σ_{x∈C_i} d(x, μ_i)` — mean
/// point-to-centroid distance summed over clusters. Lower is tighter;
/// the paper reports PIC's BE phase within 3% of IC.
pub fn jagota_index(points: &[Point], model: &Centroids) -> f64 {
    let k = model.k();
    let mut dist_sum = vec![0.0; k];
    let mut counts = vec![0u64; k];
    for p in points {
        let c = model.nearest(p);
        dist_sum[c] += p.dist2(&model.coords[c]).sqrt();
        counts[c] += 1;
    }
    dist_sum
        .iter()
        .zip(&counts)
        .filter(|(_, &n)| n > 0)
        .map(|(&s, &n)| s / n as f64)
        .sum()
}

/// Sum of squared errors (within-cluster): the classic K-means objective.
pub fn sse(points: &[Point], model: &Centroids) -> f64 {
    points
        .iter()
        .map(|p| p.dist2(&model.coords[model.nearest(p)]))
        .sum()
}

/// Mean distance from each centroid of `model` to its nearest centroid in
/// `reference` — the "distance to a reference solution" error metric of
/// Fig. 12(b). Nearest-matching keeps the metric permutation-invariant.
pub fn centroid_displacement(model: &Centroids, reference: &Centroids) -> f64 {
    assert!(!reference.coords.is_empty(), "empty reference");
    let total: f64 = model
        .coords
        .iter()
        .map(|c| {
            reference
                .coords
                .iter()
                .map(|r| c.iter().zip(r).map(|(a, b)| (a - b) * (a - b)).sum::<f64>())
                .fold(f64::INFINITY, f64::min)
                .sqrt()
        })
        .sum();
    total / model.k() as f64
}

/// Greedy one-to-one matching of `a`'s centroids onto `b`'s by distance;
/// returns for each centroid of `a` the index of its match in `b`. Used by
/// merge strategies that must "establish the correspondence of elements in
/// the two models" (paper §III.C).
pub fn match_centroids(a: &Centroids, b: &Centroids) -> Vec<usize> {
    let k = a.k();
    assert_eq!(k, b.k(), "model size mismatch");
    let mut pairs: Vec<(f64, usize, usize)> = Vec::with_capacity(k * k);
    for (i, ca) in a.coords.iter().enumerate() {
        for (j, cb) in b.coords.iter().enumerate() {
            let d: f64 = ca.iter().zip(cb).map(|(x, y)| (x - y) * (x - y)).sum();
            pairs.push((d, i, j));
        }
    }
    pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("distances are never NaN"));
    let mut out = vec![usize::MAX; k];
    let mut used = vec![false; k];
    for (_, i, j) in pairs {
        if out[i] == usize::MAX && !used[j] {
            out[i] = j;
            used[j] = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(raw: &[[f64; 1]]) -> Vec<Point> {
        raw.iter().map(|c| Point::new(c.to_vec())).collect()
    }

    #[test]
    fn jagota_tight_beats_loose() {
        let points = pts(&[[0.0], [1.0], [10.0], [11.0]]);
        let tight = Centroids::new(vec![vec![0.5], vec![10.5]]);
        let loose = Centroids::new(vec![vec![3.0], vec![8.0]]);
        assert!(jagota_index(&points, &tight) < jagota_index(&points, &loose));
    }

    #[test]
    fn jagota_perfect_model_is_zero() {
        let points = pts(&[[2.0], [8.0]]);
        let m = Centroids::new(vec![vec![2.0], vec![8.0]]);
        assert_eq!(jagota_index(&points, &m), 0.0);
    }

    #[test]
    fn sse_decreases_after_lloyd_step() {
        let points = pts(&[[0.0], [2.0], [10.0], [12.0]]);
        let m0 = Centroids::new(vec![vec![3.0], vec![9.0]]);
        let m1 = super::super::mr::lloyd_step(&points, &m0);
        assert!(sse(&points, &m1) <= sse(&points, &m0));
    }

    #[test]
    fn displacement_zero_for_identical() {
        let m = Centroids::new(vec![vec![1.0], vec![5.0]]);
        assert_eq!(centroid_displacement(&m, &m), 0.0);
    }

    #[test]
    fn displacement_is_permutation_invariant() {
        let a = Centroids::new(vec![vec![1.0], vec![5.0]]);
        let b = Centroids::new(vec![vec![5.0], vec![1.0]]);
        assert_eq!(centroid_displacement(&a, &b), 0.0);
    }

    #[test]
    fn match_centroids_is_a_bijection() {
        let a = Centroids::new(vec![vec![0.0], vec![10.0], vec![20.0]]);
        let b = Centroids::new(vec![vec![19.0], vec![1.0], vec![9.0]]);
        let m = match_centroids(&a, &b);
        assert_eq!(m, vec![1, 2, 0]);
    }
}
