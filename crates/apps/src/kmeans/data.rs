//! Points, centroid initialization and the Gaussian-mixture generator.

use pic_mapreduce::ByteSize;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One data point in an n-dimensional Cartesian space (the paper's "body
/// of points in a cartesian space of n dimensions").
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Coordinates.
    pub coords: Vec<f64>,
}

impl Point {
    /// A point from coordinates.
    pub fn new(coords: Vec<f64>) -> Self {
        Point { coords }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Squared Euclidean distance to `other` (cheaper than the rooted
    /// distance and order-preserving for nearest-centroid search).
    #[inline]
    pub fn dist2(&self, other: &[f64]) -> f64 {
        debug_assert_eq!(self.coords.len(), other.len());
        self.coords
            .iter()
            .zip(other)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }
}

impl ByteSize for Point {
    fn byte_size(&self) -> u64 {
        4 + 8 * self.coords.len() as u64
    }
}

/// Sample approximately standard-normal noise via the sum of 12 uniforms
/// (Irwin–Hall; mean 0, variance 1). Avoids an extra distribution
/// dependency and is plenty for workload synthesis.
pub(crate) fn normalish(rng: &mut StdRng) -> f64 {
    (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0
}

/// Generate `n` points from a mixture of `k_true` spherical Gaussians with
/// centers uniform in `[0, extent]^dim` and standard deviation `sigma`.
/// Deterministic per `seed`.
pub fn gaussian_mixture(
    n: usize,
    k_true: usize,
    dim: usize,
    extent: f64,
    sigma: f64,
    seed: u64,
) -> Vec<Point> {
    assert!(k_true > 0 && dim > 0, "need positive k and dim");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..k_true)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>() * extent).collect())
        .collect();
    (0..n)
        .map(|i| {
            let c = &centers[i % k_true];
            Point::new(c.iter().map(|&x| x + sigma * normalish(&mut rng)).collect())
        })
        .collect()
}

/// `k` random initial centroids uniform in `[0, extent]^dim` — the
/// "arbitrary initial model (often chosen randomly)" the paper's key
/// insight rests on.
pub fn init_random_centroids(k: usize, dim: usize, extent: f64, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..k)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>() * extent).collect())
        .collect()
}

/// k-means++ initialization (Arthur & Vassilvitskii 2007): the first
/// centroid is a uniform point, each further centroid is a point sampled
/// with probability proportional to its squared distance from the nearest
/// centroid chosen so far. A *smart initial model* — the natural foil to
/// PIC's claim that its best-effort phase is a cheap way to obtain one
/// ("determining a good initial model, in general, can be as difficult as
/// finding the solution in the first place", paper §II).
///
/// # Panics
/// Panics if `points` is empty or `k == 0`.
pub fn init_kmeanspp(points: &[Point], k: usize, seed: u64) -> Vec<Vec<f64>> {
    assert!(!points.is_empty(), "k-means++ needs data");
    assert!(k > 0, "k must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].coords.clone());
    let mut d2: Vec<f64> = points.iter().map(|p| p.dist2(&centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with chosen centroids; fall back to
            // uniform choice.
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut idx = 0;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    idx = i;
                    break;
                }
            }
            idx
        };
        let c = points[next].coords.clone();
        for (d, p) in d2.iter_mut().zip(points) {
            *d = d.min(p.dist2(&c));
        }
        centroids.push(c);
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixture_is_deterministic_and_sized() {
        let a = gaussian_mixture(100, 5, 3, 100.0, 2.0, 42);
        let b = gaussian_mixture(100, 5, 3, 100.0, 2.0, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|p| p.dim() == 3));
    }

    #[test]
    fn different_seeds_differ() {
        let a = gaussian_mixture(10, 2, 2, 10.0, 1.0, 1);
        let b = gaussian_mixture(10, 2, 2, 10.0, 1.0, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn points_cluster_near_centers() {
        // With tiny sigma, same-class points should be far closer to each
        // other than cross-class points on average.
        let pts = gaussian_mixture(200, 2, 3, 1000.0, 0.1, 7);
        let same = pts[0].dist2(&pts[2].coords); // both class 0
        let cross = pts[0].dist2(&pts[1].coords); // class 0 vs 1
        assert!(same < cross, "same {same} cross {cross}");
    }

    #[test]
    fn dist2_basics() {
        let p = Point::new(vec![0.0, 3.0]);
        assert_eq!(p.dist2(&[4.0, 0.0]), 25.0);
        assert_eq!(p.dist2(&p.coords.clone()), 0.0);
    }

    #[test]
    fn byte_size_counts_coords() {
        assert_eq!(Point::new(vec![0.0; 3]).byte_size(), 4 + 24);
    }

    #[test]
    fn init_centroids_in_range() {
        let c = init_random_centroids(10, 4, 50.0, 3);
        assert_eq!(c.len(), 10);
        for cc in &c {
            assert_eq!(cc.len(), 4);
            assert!(cc.iter().all(|&x| (0.0..=50.0).contains(&x)));
        }
    }

    #[test]
    fn kmeanspp_picks_k_distinct_data_points() {
        let pts = gaussian_mixture(500, 8, 3, 100.0, 1.0, 17);
        let c = init_kmeanspp(&pts, 8, 3);
        assert_eq!(c.len(), 8);
        // Every centroid is an actual data point.
        for cc in &c {
            assert!(pts.iter().any(|p| p.coords == *cc));
        }
        // And they are pairwise distinct (well-separated data).
        for i in 0..8 {
            for j in 0..i {
                assert_ne!(c[i], c[j]);
            }
        }
    }

    #[test]
    fn kmeanspp_spreads_better_than_random_init() {
        use crate::kmeans::{sse, Centroids};
        let pts = gaussian_mixture(2_000, 10, 3, 1000.0, 5.0, 23);
        let pp = Centroids::new(init_kmeanspp(&pts, 10, 3));
        let rand_init = Centroids::new(init_random_centroids(10, 3, 1000.0, 3));
        assert!(sse(&pts, &pp) < sse(&pts, &rand_init));
    }

    #[test]
    fn kmeanspp_handles_degenerate_duplicate_data() {
        let pts = vec![Point::new(vec![1.0, 1.0]); 20];
        let c = init_kmeanspp(&pts, 3, 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn normalish_has_sane_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normalish(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
