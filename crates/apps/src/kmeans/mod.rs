//! K-means clustering (paper Fig. 1(b) for IC, Fig. 6 for PIC).
//!
//! * **IC realization** (Fig. 1(b)): each iteration is one MapReduce job.
//!   The mapper assigns every point to its nearest centroid and emits
//!   `(cluster, (coordinate sum, count))`; a combiner pre-sums per map
//!   task; the reducer averages to produce the new centroid. Convergence:
//!   every centroid moved less than a threshold.
//! * **PIC realization** (Fig. 6): `partition` randomly splits the points
//!   and *copies* the model to every sub-problem; local iterations run
//!   Lloyd's algorithm to convergence inside each partition; `merge`
//!   averages corresponding centroids across partitions (plain average, as
//!   in the paper — a count-weighted variant is available for the
//!   ablation); `BE_converged` reuses the same threshold criterion.
//!
//! The synthetic generator produces a Gaussian mixture, the structure the
//! paper's "nearly uncoupled" argument assumes for clustering (§VI.B:
//! "the impact of far-away points on a centroid is much smaller than the
//! impact of close points").

mod app;
pub mod data;
mod metrics;
mod mr;

pub use app::{KMeansApp, MergeStrategy};
pub use data::{gaussian_mixture, init_kmeanspp, init_random_centroids, Point};
pub use metrics::{centroid_displacement, jagota_index, match_centroids, sse};
pub use mr::{lloyd_step, AssignMapper, AverageReducer, Centroids, SumCombiner};
