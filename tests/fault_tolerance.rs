//! Fault-tolerance behaviour: PIC rides on the engine's task re-execution
//! ("if a node running a best-effort phase fails, Hadoop will
//! automatically restart it", paper §VII), plus the chaos & elasticity
//! scenario matrix (DESIGN.md §12): every fault scenario × app × driver
//! cell must uphold the chaos invariants — crash/degrade/preemption
//! leave the converged answer bit-identical to the clean run, recovery
//! bytes reconcile exactly with the ledger, and every injected event is
//! visible as a trace instant.

use pic_bench::experiments::chaos::{campaign, ChaosCell, CHAOS_APPS, SCENARIOS};
use pic_bench::experiments::ExperimentCtx;
use pic_core::prelude::*;
use pic_mapreduce::traits::{FnMapper, FnReducer};
use pic_mapreduce::{Dataset, Engine, JobConfig, MapContext, ReduceContext, Timing};
use pic_simnet::chaos::FaultPlan;
use pic_simnet::trace::check;
use pic_simnet::ClusterSpec;

fn analytic(name: &str) -> JobConfig {
    JobConfig::new(name).timing(Timing::default_analytic())
}

fn sum_by_mod(engine: &Engine, data: &Dataset<u64>, cfg: &JobConfig) -> Vec<(u64, u64)> {
    let mapper = FnMapper::new(|x: &u64, ctx: &mut MapContext<u64, u64>| {
        ctx.emit(*x % 5, *x);
    });
    let reducer = FnReducer::new(|k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
        ctx.emit((*k, vs.iter().sum()));
    });
    let mut out = engine.run(cfg, data, &mapper, &reducer).output;
    out.sort();
    out
}

#[test]
fn failed_tasks_are_reexecuted_with_identical_results() {
    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/ft/d", (0..2_000u64).collect(), 8);
    let clean = sum_by_mod(&engine, &data, &analytic("clean"));
    for failing_task in [0usize, 3, 7] {
        let faulty = sum_by_mod(
            &engine,
            &data,
            &analytic("faulty").fail_map_task(failing_task),
        );
        assert_eq!(
            clean, faulty,
            "failure of task {failing_task} changed the answer"
        );
    }
}

#[test]
fn retries_cost_time_but_not_extra_traffic() {
    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/ft/t", (0..2_000u64).collect(), 8);

    let mapper = FnMapper::new(|x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(*x % 5, *x));
    let reducer = FnReducer::new(|k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
        ctx.emit((*k, vs.iter().sum()));
    });

    let clean = engine.run(&analytic("c"), &data, &mapper, &reducer);
    let faulty = engine.run(&analytic("f").fail_map_task(2), &data, &mapper, &reducer);
    assert_eq!(faulty.stats.retried_tasks, 1);
    assert!(faulty.stats.map_time_s >= clean.stats.map_time_s);
    assert_eq!(faulty.stats.shuffle_bytes, clean.stats.shuffle_bytes);
}

#[test]
fn multiple_failures_in_one_job() {
    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/ft/m", (0..500u64).collect(), 10);
    let cfg = analytic("multi")
        .fail_map_task(1)
        .fail_map_task(4)
        .fail_map_task(9);
    let out = sum_by_mod(&engine, &data, &cfg);
    let clean = sum_by_mod(&engine, &data, &analytic("ref"));
    assert_eq!(out, clean);
}

#[test]
fn failed_reduce_tasks_are_reexecuted_with_identical_results() {
    // The reduce-side mirror of the map-failure equivalence: the first
    // attempt of the named reduce task fails and re-runs, costing time
    // but changing neither the answer nor the shuffle volume.
    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/ft/r", (0..2_000u64).collect(), 8);
    let clean = sum_by_mod(&engine, &data, &analytic("clean").reducers(4));
    for failing_task in [0usize, 2, 3] {
        let faulty = sum_by_mod(
            &engine,
            &data,
            &analytic("faulty")
                .reducers(4)
                .fail_reduce_task(failing_task),
        );
        assert_eq!(
            clean, faulty,
            "failure of reduce task {failing_task} changed the answer"
        );
    }

    let mapper = FnMapper::new(|x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(*x % 5, *x));
    let reducer = FnReducer::new(|k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
        ctx.emit((*k, vs.iter().sum()));
    });
    let clean = engine.run(&analytic("c").reducers(4), &data, &mapper, &reducer);
    let faulty = engine.run(
        &analytic("f").reducers(4).fail_reduce_task(1),
        &data,
        &mapper,
        &reducer,
    );
    assert_eq!(faulty.stats.retried_tasks, 1);
    assert!(faulty.stats.reduce_time_s > clean.stats.reduce_time_s);
    assert_eq!(faulty.stats.shuffle_bytes, clean.stats.shuffle_bytes);
}

// --- the chaos & elasticity scenario matrix (DESIGN.md §12) ---

/// Every (scenario, app, driver) cell of the campaign, at smoke scale.
/// `cells_for` has already re-validated every faulty trace (structural
/// suite + chaos checks + exact byte reconciliation) before returning.
fn matrix() -> Vec<ChaosCell> {
    campaign(&ExperimentCtx { scale: 0.01 }, &SCENARIOS).expect("campaign runs")
}

#[test]
fn scenario_matrix_upholds_the_chaos_invariants() {
    let cells = matrix();
    assert_eq!(
        cells.len(),
        SCENARIOS.len() * CHAOS_APPS.len() * 2,
        "4 scenarios x 3 apps x (ic, pic)"
    );
    for c in &cells {
        assert!(c.clean_s > 0.0 && c.faulty_s > 0.0, "{c:?}");
        match c.scenario {
            // Chaos never touches host computation: anything that only
            // perturbs timing and traffic must reproduce the clean
            // answer exactly.
            "node-crash" | "preemption-wave" => {
                assert!(
                    c.exact_result,
                    "{}/{}/{}: result drifted",
                    c.app, c.scenario, c.driver
                );
                assert!(
                    c.injected_events >= 1,
                    "{}/{}/{}: fault never fired",
                    c.app,
                    c.scenario,
                    c.driver
                );
            }
            // Degradation stretches transfers; no attempt is killed, so
            // nothing is charged to the recovery class.
            "rack-degrade" => {
                assert!(c.exact_result, "{}/{}: result drifted", c.app, c.driver);
                assert_eq!(
                    c.recovery_bytes, 0,
                    "{}/{}: degradation charged recovery bytes",
                    c.app, c.driver
                );
                assert!(
                    c.faulty_s >= c.clean_s,
                    "{}/{}: degraded run faster than clean",
                    c.app,
                    c.driver
                );
            }
            // The one scenario that may legitimately move the answer
            // (the partitioning changes); it must still fire, pay a
            // visible rebalance, and report a finite quality penalty.
            "elastic-resize" => {
                assert!(
                    c.injected_events >= 1,
                    "{}/{}: resize never fired",
                    c.app,
                    c.driver
                );
                assert!(
                    c.recovery_bytes > 0,
                    "{}/{}: resize paid no rebalance traffic",
                    c.app,
                    c.driver
                );
                assert!(c.tt_quality_delta_s.is_finite());
            }
            other => panic!("unknown scenario in matrix: {other}"),
        }
    }
    // Crashes cost time somewhere in the matrix.
    assert!(cells
        .iter()
        .filter(|c| c.scenario == "node-crash")
        .any(|c| c.recovery_s > 0.0 && c.recovery_bytes > 0));
}

#[test]
fn injected_crash_preserves_quality_trajectories_and_reconciles_recovery() {
    use pic_apps::linsolve::{diag_dominant_system, LinSolveApp};
    let n = 100;
    let sys = diag_dominant_system(n, 0.05, 11);
    let app = LinSolveApp::new(n, 5, 1e-8)
        .with_exact(sys.exact.clone())
        .with_rows(sys.rows.clone());
    let timing = Timing::default_analytic();

    let clean_engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&clean_engine, "/chaos/ls", sys.rows.clone(), 5);
    clean_engine.reset();
    let clean = run_ic(
        &clean_engine,
        &app,
        &data,
        vec![0.0; n],
        &IcOptions {
            timing: timing.clone(),
            ..Default::default()
        },
    );

    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/chaos/ls", sys.rows.clone(), 5);
    engine.reset();
    engine
        .arm_chaos(&FaultPlan::new(9).node_crash(1, 0.3 * clean.total_time_s))
        .expect("valid plan");
    let faulty = run_ic(
        &engine,
        &app,
        &data,
        vec![0.0; n],
        &IcOptions {
            timing,
            ..Default::default()
        },
    );

    // The answer and the whole quality *sequence* are bit-identical —
    // the crash only re-runs work, it never changes it. Only the clock
    // moves.
    assert_eq!(faulty.final_model, clean.final_model);
    let clean_errs: Vec<f64> = clean.trajectory.iter().map(|p| p.error).collect();
    let faulty_errs: Vec<f64> = faulty.trajectory.iter().map(|p| p.error).collect();
    assert_eq!(
        clean_errs, faulty_errs,
        "crash perturbed the quality sequence"
    );
    assert!(
        faulty.total_time_s > clean.total_time_s,
        "crash cost no time"
    );

    // Traced recovery bytes reconcile == with the ledger, the crash is
    // visible as a chaos instant, and the full structural suite holds.
    let trace = engine.trace();
    let traffic = engine.traffic();
    let traced: u64 = trace
        .instants
        .iter()
        .filter(|i| i.cat == "traffic" && i.name == "recovery")
        .filter_map(|i| i.arg_u64("bytes"))
        .sum();
    assert!(traffic.recovery_total() > 0, "crash charged no recovery");
    assert_eq!(traced, traffic.recovery_total());
    assert!(trace
        .instants
        .iter()
        .any(|i| i.cat == "chaos" && i.name == "node-crash"));
    check::validate(&trace, &traffic).expect("faulty trace passes the structural suite");
}
