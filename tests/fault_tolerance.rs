//! Fault-tolerance behaviour: PIC rides on the engine's task re-execution
//! ("if a node running a best-effort phase fails, Hadoop will
//! automatically restart it", paper §VII).

use pic_mapreduce::traits::{FnMapper, FnReducer};
use pic_mapreduce::{Dataset, Engine, JobConfig, MapContext, ReduceContext, Timing};
use pic_simnet::ClusterSpec;

fn analytic(name: &str) -> JobConfig {
    JobConfig::new(name).timing(Timing::default_analytic())
}

fn sum_by_mod(engine: &Engine, data: &Dataset<u64>, cfg: &JobConfig) -> Vec<(u64, u64)> {
    let mapper = FnMapper::new(|x: &u64, ctx: &mut MapContext<u64, u64>| {
        ctx.emit(*x % 5, *x);
    });
    let reducer = FnReducer::new(|k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
        ctx.emit((*k, vs.iter().sum()));
    });
    let mut out = engine.run(cfg, data, &mapper, &reducer).output;
    out.sort();
    out
}

#[test]
fn failed_tasks_are_reexecuted_with_identical_results() {
    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/ft/d", (0..2_000u64).collect(), 8);
    let clean = sum_by_mod(&engine, &data, &analytic("clean"));
    for failing_task in [0usize, 3, 7] {
        let faulty = sum_by_mod(
            &engine,
            &data,
            &analytic("faulty").fail_map_task(failing_task),
        );
        assert_eq!(
            clean, faulty,
            "failure of task {failing_task} changed the answer"
        );
    }
}

#[test]
fn retries_cost_time_but_not_extra_traffic() {
    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/ft/t", (0..2_000u64).collect(), 8);

    let mapper = FnMapper::new(|x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(*x % 5, *x));
    let reducer = FnReducer::new(|k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
        ctx.emit((*k, vs.iter().sum()));
    });

    let clean = engine.run(&analytic("c"), &data, &mapper, &reducer);
    let faulty = engine.run(&analytic("f").fail_map_task(2), &data, &mapper, &reducer);
    assert_eq!(faulty.stats.retried_tasks, 1);
    assert!(faulty.stats.map_time_s >= clean.stats.map_time_s);
    assert_eq!(faulty.stats.shuffle_bytes, clean.stats.shuffle_bytes);
}

#[test]
fn multiple_failures_in_one_job() {
    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/ft/m", (0..500u64).collect(), 10);
    let cfg = analytic("multi")
        .fail_map_task(1)
        .fail_map_task(4)
        .fail_map_task(9);
    let out = sum_by_mod(&engine, &data, &cfg);
    let clean = sum_by_mod(&engine, &data, &analytic("ref"));
    assert_eq!(out, clean);
}
