//! Trace-driven invariants for full PIC runs.
//!
//! A k-means PIC run records a span tree (pic → best-effort iteration →
//! solves/merge → top-off iteration → job → phase → task) plus instant
//! events for every ledger charge, retry, and straggler drop. These tests
//! pin the structural properties the trace must satisfy — nesting, phase
//! ordering, per-slot exclusivity, exact byte attribution — and that the
//! trace itself is deterministic across rayon pool widths.

use pic_apps::kmeans::{gaussian_mixture, init_random_centroids, Centroids, KMeansApp};
use pic_core::prelude::*;
use pic_mapreduce::traits::{FnMapper, FnReducer};
use pic_mapreduce::{Dataset, Engine, JobConfig, MapContext, ReduceContext, Timing};
use pic_simnet::scheduler::{SchedulerOptions, SlotScheduler, TaskSpec};
use pic_simnet::trace::{check, MetricsRegistry, Span, Trace, Tracer};
use pic_simnet::{ClusterSpec, TrafficSnapshot};

fn pic_timing() -> Timing {
    Timing::PerRecord {
        map_secs: 5.6e-4,
        reduce_secs: 5e-5,
    }
}

fn pic_opts(partitions: usize) -> PicOptions {
    PicOptions {
        partitions,
        timing: pic_timing(),
        local_secs_per_record: Some(0.6e-6),
        ..Default::default()
    }
}

/// One full k-means PIC run on a fresh engine; returns everything the
/// invariants need. The ledger and tracer both start from zero (the
/// post-ingest `reset`), so traced bytes must reconcile with the ledger
/// over the whole run.
fn run_kmeans_pic() -> (Trace, TrafficSnapshot, PicReport<Centroids>) {
    let pts = gaussian_mixture(5_000, 20, 3, 1000.0, 8.0, 7);
    let init = Centroids::new(init_random_centroids(20, 3, 1000.0, 8));
    let app = KMeansApp::new(20, 3, 1e-3);
    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/tr/km", pts, 24);
    engine.reset();
    let report = run_pic(&engine, &app, &data, init, &pic_opts(8));
    (engine.trace(), engine.traffic(), report)
}

/// The standard run, computed once and shared across tests.
fn std_run() -> &'static (Trace, TrafficSnapshot, PicReport<Centroids>) {
    static RUN: std::sync::OnceLock<(Trace, TrafficSnapshot, PicReport<Centroids>)> =
        std::sync::OnceLock::new();
    RUN.get_or_init(run_kmeans_pic)
}

fn children_of<'a>(trace: &'a Trace, parent: &Span) -> Vec<&'a Span> {
    trace
        .spans
        .iter()
        .filter(|s| s.parent == Some(parent.id))
        .collect()
}

#[test]
fn pic_trace_satisfies_the_structural_suite() {
    let (trace, traffic, _) = std_run();
    check::validate(trace, traffic).unwrap();
}

#[test]
fn be_iterations_strictly_precede_topoff() {
    let (trace, _, report) = std_run();
    check::span_order(trace, "be-iteration", "topoff").unwrap();
    let be_spans = trace
        .spans
        .iter()
        .filter(|s| s.cat == "be-iteration")
        .count();
    assert_eq!(be_spans, report.be_iterations, "one span per BE round");
    let topoff_spans = trace.spans.iter().filter(|s| s.cat == "topoff").count();
    assert_eq!(
        topoff_spans, report.topoff_iterations,
        "one span per top-off iteration"
    );
}

#[test]
fn merges_start_after_every_quorum_solve_task() {
    let (trace, _, report) = std_run();
    let mut rounds = 0;
    for be in trace.spans.iter().filter(|s| s.cat == "be-iteration") {
        let kids = children_of(trace, be);
        let merges: Vec<&&Span> = kids.iter().filter(|s| s.cat == "merge").collect();
        assert_eq!(merges.len(), 1, "one merge per BE round: {}", be.name);
        let merge = merges[0];
        let solves: Vec<&&Span> = kids.iter().filter(|s| s.cat == "task").collect();
        assert!(!solves.is_empty(), "round {} has solve tasks", be.name);
        for s in &solves {
            assert!(
                s.t1 <= merge.t0 + 1e-9 * merge.t0.abs().max(1.0),
                "solve {} [{}, {}] outlives merge start {} in {}",
                s.name,
                s.t0,
                s.t1,
                merge.t0,
                be.name
            );
        }
        rounds += 1;
    }
    assert_eq!(rounds, report.be_iterations);
}

#[test]
fn root_span_nests_the_whole_two_phase_run() {
    let (trace, _, _) = std_run();
    let roots: Vec<&Span> = trace.spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "exactly one root span");
    let root = roots[0];
    assert_eq!(root.cat, "driver");
    assert!(root.name.starts_with("pic:"), "{}", root.name);
    // The top-off driver span is a direct child of the pic root.
    let topoff_roots: Vec<&Span> = trace
        .spans
        .iter()
        .filter(|s| s.cat == "driver" && s.name.starts_with("topoff:"))
        .collect();
    assert_eq!(topoff_roots.len(), 1);
    assert_eq!(topoff_roots[0].parent, Some(root.id));
}

#[test]
fn traced_bytes_reconcile_exactly_with_the_ledger() {
    let (trace, traffic, _) = std_run();
    // Exact equality, class by class — not approximate.
    assert_eq!(trace.traffic_totals(), *traffic);
    check::bytes_attributed(trace, traffic).unwrap();
    // And the run actually moved bytes in the classes the paper tracks.
    assert!(traffic.model_update_total() > 0);
    assert!(traffic.shuffle_total() > 0);
}

#[test]
fn retry_instants_agree_with_retried_tasks() {
    let engine = Engine::new(ClusterSpec::small());
    let records: Vec<(u8, u32)> = (0..600u32).map(|i| ((i % 11) as u8, i)).collect();
    let data = Dataset::create(&engine, "/tr/retry", records, 6);
    engine.reset();
    let mapper = FnMapper::new(|r: &(u8, u32), ctx: &mut MapContext<u64, u64>| {
        ctx.emit(r.0 as u64, r.1 as u64);
    });
    let reducer = FnReducer::new(|k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
        ctx.emit((*k, vs.iter().sum()));
    });
    let cfg = JobConfig::new("retry")
        .reducers(3)
        .timing(Timing::default_analytic())
        .fail_map_task(0)
        .fail_map_task(2);
    let result = engine.run(&cfg, &data, &mapper, &reducer);
    let trace = engine.trace();
    assert_eq!(result.stats.retried_tasks, 2);
    assert_eq!(
        check::sched_events(&trace, "retry"),
        result.stats.retried_tasks,
        "one retry instant per retried task"
    );
    check::validate(&trace, &engine.traffic()).unwrap();

    // A clean job records no retry instants.
    let engine2 = Engine::new(ClusterSpec::small());
    let records2: Vec<(u8, u32)> = (0..600u32).map(|i| ((i % 11) as u8, i)).collect();
    let data2 = Dataset::create(&engine2, "/tr/clean", records2, 6);
    engine2.reset();
    let clean = engine2.run(
        &JobConfig::new("clean")
            .reducers(3)
            .timing(Timing::default_analytic()),
        &data2,
        &mapper,
        &reducer,
    );
    assert_eq!(clean.stats.retried_tasks, 0);
    assert_eq!(check::sched_events(&engine2.trace(), "retry"), 0);
}

#[test]
fn straggler_drop_instants_agree_with_the_report() {
    let pts = gaussian_mixture(5_000, 20, 3, 1000.0, 8.0, 7);
    let init = Centroids::new(init_random_centroids(20, 3, 1000.0, 8));
    let app = KMeansApp::new(20, 3, 1.0);
    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/tr/strag", pts, 24);
    engine.reset();
    let report = run_pic(
        &engine,
        &app,
        &data,
        init,
        &PicOptions {
            merge_quorum: 0.85,
            slow_partitions: vec![(3, 50.0)],
            ..pic_opts(8)
        },
    );
    let trace = engine.trace();
    assert!(report.straggler_drops > 0, "the slow partition is dropped");
    assert_eq!(
        check::sched_events(&trace, "straggler-drop"),
        report.straggler_drops
    );
    check::validate(&trace, &engine.traffic()).unwrap();
    // The full-quorum std run never drops, and its trace agrees.
    let (std_trace, _, std_report) = std_run();
    assert_eq!(std_report.straggler_drops, 0);
    assert_eq!(check::sched_events(std_trace, "straggler-drop"), 0);
}

#[test]
fn speculative_launch_instants_mark_backup_attempts() {
    // Directly replay a heterogeneous schedule: node 2 runs 20× slower,
    // speculation launches backups for its tasks.
    let spec = ClusterSpec::small();
    let tasks: Vec<TaskSpec> = (0..6).map(|_| TaskSpec::compute(10.0)).collect();
    let opts = SchedulerOptions {
        node_speed: vec![(2, 20.0)],
        speculative: true,
        ..Default::default()
    };
    let tracer = Tracer::standalone();
    let outcome =
        SlotScheduler::new(&spec).schedule_traced(&tasks, 1, 0..6, &opts, &tracer, 0.0, "map");
    let trace = tracer.trace();
    let backups = outcome.launches.iter().filter(|l| l.speculative).count();
    assert!(backups > 0, "the slow node draws speculative backups");
    assert_eq!(check::sched_events(&trace, "speculative-launch"), backups);
    check::no_overlap_per_slot(&trace).unwrap();
}

#[test]
fn pic_trace_is_identical_across_pool_widths() {
    let serial_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool");
    let (trace_1, traffic_1, report_1) = serial_pool.install(run_kmeans_pic);
    let (trace_n, traffic_n, report_n) = run_kmeans_pic(); // default pool

    // The invariant suite holds under both pool widths…
    check::validate(&trace_1, &traffic_1).unwrap();
    check::validate(&trace_n, &traffic_n).unwrap();
    check::span_order(&trace_1, "be-iteration", "topoff").unwrap();
    check::span_order(&trace_n, "be-iteration", "topoff").unwrap();

    // …and modulo host wall-clock args the traces are bit-identical.
    assert_eq!(trace_1.without_host_args(), trace_n.without_host_args());
    assert_eq!(traffic_1, traffic_n);
    assert_eq!(report_1.be_iterations, report_n.be_iterations);
    assert_eq!(report_1.total_time_s, report_n.total_time_s);
    assert_eq!(report_1.final_model, report_n.final_model);
}

#[test]
fn metrics_registry_reflects_the_run() {
    let (trace, traffic, report) = std_run();
    let m = MetricsRegistry::from_trace(trace);
    // Per-round BE time is present and sums near the BE wall time minus
    // startup (each round span covers broadcast + solve + merge).
    let be_time: f64 = m
        .phase_time_s
        .iter()
        .filter(|(k, _)| k.starts_with("be-iteration/"))
        .map(|(_, v)| v)
        .sum();
    assert!(be_time > 0.0 && be_time <= report.be_time_s + 1e-9);
    // Traced class bytes match the ledger label for label.
    for (label, bytes) in &m.class_bytes {
        let ledger_bytes = pic_simnet::TrafficClass::ALL
            .iter()
            .find(|c| c.label() == label.as_str())
            .map(|c| traffic.get(*c))
            .expect("known class label");
        assert_eq!(*bytes, ledger_bytes, "class {label}");
    }
    // The engine's job counters surfaced as counter rollups.
    assert!(
        m.counters.keys().any(|k| !k.starts_with("sched.")),
        "job counters present: {:?}",
        m.counters.keys().collect::<Vec<_>>()
    );
    let rendered = m.render();
    assert!(rendered.contains("be-iteration/"));
}

#[test]
fn chrome_export_carries_the_run_structure() {
    let (trace, _, _) = std_run();
    let json = trace.to_chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("pic:kmeans"));
    assert!(json.contains("\"be-1\""));
    assert!(json.contains("topoff"));
    assert!(json.contains("solve-slot-0"), "solve lanes are named");
    assert!(json.contains("\"thread_name\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}
