//! Straggler tolerance: the quorum-merge extension of the best-effort
//! phase (timing-slack analogue of the paper's numerical forgiveness) and
//! the scheduler's speculative execution, including their interaction
//! with injected chaos (DESIGN.md §12).

use pic_apps::kmeans::{gaussian_mixture, init_random_centroids, sse, Centroids, KMeansApp};
use pic_core::prelude::*;
use pic_mapreduce::{Dataset, Engine, Timing};
use pic_simnet::chaos::FaultPlan;
use pic_simnet::scheduler::{SchedulerOptions, SlotScheduler, TaskSpec};
use pic_simnet::trace::check;
use pic_simnet::ClusterSpec;

fn setup() -> (KMeansApp, Vec<pic_apps::kmeans::Point>, Centroids) {
    let pts = gaussian_mixture(10_000, 20, 3, 1000.0, 8.0, 5);
    let init = Centroids::new(init_random_centroids(20, 3, 1000.0, 7));
    (KMeansApp::new(20, 3, 1.0), pts, init)
}

fn pic_opts(quorum: f64, slow: Vec<(usize, f64)>) -> PicOptions {
    PicOptions {
        partitions: 8,
        timing: Timing::PerRecord {
            map_secs: 5.6e-4,
            reduce_secs: 5e-5,
        },
        local_secs_per_record: Some(0.6e-6),
        merge_quorum: quorum,
        slow_partitions: slow,
        ..Default::default()
    }
}

#[test]
fn quorum_merge_rides_out_an_injected_straggler() {
    let (app, pts, init) = setup();

    // One partition 50× slower. Full-quorum PIC waits for it; a 7/8
    // quorum does not.
    let run = |quorum: f64| {
        let engine = Engine::new(ClusterSpec::small());
        let data = Dataset::create(&engine, "/st/km", pts.clone(), 24);
        engine.reset();
        run_pic(
            &engine,
            &app,
            &data,
            init.clone(),
            &pic_opts(quorum, vec![(3, 50.0)]),
        )
    };

    let waiting = run(1.0);
    let quorum = run(0.85);

    assert_eq!(waiting.straggler_drops, 0);
    assert!(
        quorum.straggler_drops > 0,
        "the slow partition should be dropped"
    );
    assert!(
        quorum.be_time_s < waiting.be_time_s * 0.7,
        "quorum BE {} vs waiting BE {}",
        quorum.be_time_s,
        waiting.be_time_s
    );
    // Quality is preserved: the top-off phase repairs the dropped work.
    let sse_waiting = sse(&pts, &waiting.final_model);
    let sse_quorum = sse(&pts, &quorum.final_model);
    assert!(
        sse_quorum <= sse_waiting * 1.3 + 1e-9,
        "quorum SSE {sse_quorum} vs waiting SSE {sse_waiting}"
    );
}

#[test]
fn full_quorum_never_drops() {
    let (app, pts, init) = setup();
    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/st/full", pts, 24);
    engine.reset();
    let r = run_pic(&engine, &app, &data, init, &pic_opts(1.0, vec![]));
    assert_eq!(r.straggler_drops, 0);
}

#[test]
#[should_panic(expected = "merge_quorum")]
fn zero_quorum_rejected() {
    let (app, pts, init) = setup();
    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/st/zero", pts, 24);
    let _ = run_pic(&engine, &app, &data, init, &pic_opts(0.0, vec![]));
}

#[test]
fn quorum_merge_tolerates_injected_chaos() {
    let (app, pts, init) = setup();

    // Baseline: a 7/8-quorum run with one injected straggler partition.
    let clean_engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&clean_engine, "/st/chaos", pts.clone(), 24);
    clean_engine.reset();
    let clean = run_pic(
        &clean_engine,
        &app,
        &data,
        init.clone(),
        &pic_opts(0.85, vec![(3, 50.0)]),
    );

    // Same run under chaos: a node crash mid-run plus a link brown-out.
    // A crash reschedules work and so may shift which partitions miss the
    // quorum — the converged model is held to the same quality band the
    // quorum itself is allowed, not to bit-equality.
    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/st/chaos", pts.clone(), 24);
    engine.reset();
    engine
        .arm_chaos(
            &FaultPlan::new(17)
                .node_crash(2, 0.3 * clean.total_time_s)
                .degrade_links(3.0, 0.1 * clean.total_time_s, 0.5 * clean.total_time_s),
        )
        .expect("valid plan");
    let faulty = run_pic(
        &engine,
        &app,
        &data,
        init.clone(),
        &pic_opts(0.85, vec![(3, 50.0)]),
    );

    assert!(engine.chaos().injected_events() >= 1, "no fault ever fired");
    assert!(
        faulty.total_time_s > clean.total_time_s,
        "chaos cost no time: {} vs {}",
        faulty.total_time_s,
        clean.total_time_s
    );
    let sse_clean = sse(&pts, &clean.final_model);
    let sse_faulty = sse(&pts, &faulty.final_model);
    assert!(
        sse_faulty <= sse_clean * 1.3 + 1e-9,
        "chaos SSE {sse_faulty} vs clean SSE {sse_clean}"
    );
    check::validate(&engine.trace(), &engine.traffic())
        .expect("chaotic quorum trace passes the structural suite");
}

#[test]
fn speculative_execution_beats_a_slow_node() {
    let spec = ClusterSpec::small();
    // 6 equal tasks, node 2 runs 20× slower; one slot per node so exactly
    // one task lands on the slow node.
    let tasks: Vec<TaskSpec> = (0..6).map(|_| TaskSpec::compute(10.0)).collect();
    let slow = SchedulerOptions {
        node_speed: vec![(2, 20.0)],
        speculative: false,
        ..Default::default()
    };
    let spec_exec = SchedulerOptions {
        node_speed: vec![(2, 20.0)],
        speculative: true,
        ..Default::default()
    };

    let sched = SlotScheduler::new(&spec);
    let without = sched.schedule_with(&tasks, 1, 0..6, &slow);
    let with = sched.schedule_with(&tasks, 1, 0..6, &spec_exec);

    assert!(
        without.makespan_s > 150.0,
        "slow node dominates: {}",
        without.makespan_s
    );
    assert!(
        with.makespan_s < without.makespan_s / 3.0,
        "speculation should rescue the straggler: {} vs {}",
        with.makespan_s,
        without.makespan_s
    );
    // All tasks still complete exactly once in the accounting.
    assert_eq!(with.finish_times.len(), 6);
    assert!(with.finish_times.iter().all(|&t| t > 0.0));
}

#[test]
fn speculation_is_a_noop_on_homogeneous_clusters() {
    let spec = ClusterSpec::small();
    let tasks: Vec<TaskSpec> = (0..24).map(|_| TaskSpec::compute(5.0)).collect();
    let sched = SlotScheduler::new(&spec);
    let plain = sched.schedule(&tasks, 4, 0..6);
    let spec_exec = sched.schedule_with(
        &tasks,
        4,
        0..6,
        &SchedulerOptions {
            node_speed: vec![],
            speculative: true,
            ..Default::default()
        },
    );
    assert_eq!(plain.makespan_s, spec_exec.makespan_s);
}
