//! Property-based coverage for the fault-injection layer (DESIGN.md §12):
//! replaying the same seeded [`FaultPlan`] is byte-for-byte deterministic,
//! non-resize chaos never perturbs the converged model, and a hand-rolled
//! bisection over crash times pins the boundary past which a crash can no
//! longer affect the run.

use pic_apps::linsolve::{diag_dominant_system, LinSolveApp};
use pic_core::prelude::*;
use pic_mapreduce::{Dataset, Engine, Timing};
use pic_simnet::chaos::FaultPlan;
use pic_simnet::report::fmt_f64;
use pic_simnet::ClusterSpec;
use proptest::prelude::*;

fn app() -> (LinSolveApp, Vec<pic_apps::linsolve::Row>, usize) {
    let n = 60;
    let sys = diag_dominant_system(n, 0.05, 11);
    let app = LinSolveApp::new(n, 5, 1e-8)
        .with_exact(sys.exact.clone())
        .with_rows(sys.rows.clone());
    (app, sys.rows, n)
}

/// One full IC run under `plan`, summarized as a deterministic string:
/// every field that could expose nondeterminism (times, trajectory,
/// traffic, trace volume, injection count) rendered with exact float
/// formatting.
fn replay(plan: Option<&FaultPlan>) -> (Vec<f64>, String) {
    let (app, rows, n) = app();
    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/props/ls", rows, 5);
    engine.reset();
    if let Some(p) = plan {
        engine.arm_chaos(p).expect("valid plan");
    }
    let r = run_ic(
        &engine,
        &app,
        &data,
        vec![0.0; n],
        &IcOptions {
            timing: Timing::default_analytic(),
            ..Default::default()
        },
    );
    let trace = engine.trace();
    let mut s = String::new();
    s.push_str(&format!(
        "iters={} converged={} total={}\n",
        r.iterations,
        r.converged,
        fmt_f64(r.total_time_s)
    ));
    for p in &r.trajectory {
        s.push_str(&format!("t={} err={}\n", fmt_f64(p.t_s), fmt_f64(p.error)));
    }
    s.push_str(&format!(
        "traffic={:?}\nspans={} instants={} injected={}\n",
        engine.traffic(),
        trace.spans.len(),
        trace.instants.len(),
        engine.chaos().injected_events()
    ));
    (r.final_model, s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Identical seed + plan ⇒ byte-identical replay, and a plan with no
    /// elastic resize ⇒ the converged model is bit-equal to the clean
    /// run's: chaos only perturbs simulated timing and traffic, never
    /// host computation.
    #[test]
    fn seeded_plans_replay_identically_and_preserve_the_model(
        seed in 0u64..1_000,
        crash_node in 1usize..6,
        crash_frac in 0.05f64..1.2,
        // factor < 1.5 means "no degradation window in this plan";
        // wave_nodes == 0 means "no preemption wave".
        degrade_factor in 0.0f64..6.0,
        degrade_w in (0.0f64..0.5, 0.55f64..1.0),
        wave_nodes in 0usize..3,
        wave_frac in 0.1f64..0.9,
    ) {
        let (_, clean_summary) = replay(None);
        let t_clean: f64 = clean_summary
            .lines()
            .next()
            .and_then(|l| l.rsplit('=').next())
            .and_then(|v| v.parse().ok())
            .expect("summary leads with the total");
        let (clean_model, _) = replay(None);

        let mut plan = FaultPlan::new(seed).node_crash(crash_node, crash_frac * t_clean);
        if degrade_factor >= 1.5 {
            let (f0, f1) = degrade_w;
            plan = plan.degrade_links(degrade_factor, f0 * t_clean, f1 * t_clean);
        }
        if wave_nodes > 0 {
            plan = plan.preemption_wave(wave_nodes, wave_frac * t_clean);
        }

        let (model_a, summary_a) = replay(Some(&plan));
        let (model_b, summary_b) = replay(Some(&plan));
        prop_assert_eq!(&summary_a, &summary_b, "replay of one plan diverged");
        prop_assert_eq!(&model_a, &model_b);
        prop_assert_eq!(&model_a, &clean_model, "non-resize chaos moved the model");
    }
}

/// Whether a crash of node 1 at `t` actually fires during the run.
fn crash_fires(t: f64) -> bool {
    let (app, rows, n) = app();
    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/props/bisect", rows, 5);
    engine.reset();
    engine
        .arm_chaos(&FaultPlan::new(7).node_crash(1, t))
        .expect("valid plan");
    run_ic(
        &engine,
        &app,
        &data,
        vec![0.0; n],
        &IcOptions {
            timing: Timing::default_analytic(),
            ..Default::default()
        },
    );
    engine.chaos().injected_events() > 0
}

/// Hand-rolled bisection for the minimal *ineffective* crash time: the
/// predicate "a crash at `t` fires" is monotone (later crashes can only
/// miss more of the run), so the boundary between firing and missing is
/// a single point, found here to 1e-3 s without any shrinking support
/// from the vendored proptest.
#[test]
fn crash_time_bisection_pins_the_effective_window() {
    let (_, clean_summary) = replay(None);
    let t_clean: f64 = clean_summary
        .lines()
        .next()
        .and_then(|l| l.rsplit('=').next())
        .and_then(|v| v.parse().ok())
        .expect("summary leads with the total");

    assert!(crash_fires(0.0), "a crash before the run must fire");
    let mut lo = 0.0; // known to fire
    let mut hi = 4.0 * t_clean; // safely past any possible phase window
    assert!(!crash_fires(hi), "a crash far past the run must not fire");
    while hi - lo > 1e-3 {
        let mid = 0.5 * (lo + hi);
        if crash_fires(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // The boundary sits at or after the clean finish time (a crash can
    // only fire while some phase is still scheduling) and within the
    // faulty run's own horizon.
    assert!(
        lo >= t_clean - 1e-3,
        "crash window ends at {lo} before the clean finish {t_clean}"
    );
    assert!(
        hi <= 4.0 * t_clean,
        "crash window end {hi} beyond any plausible horizon"
    );
    // Monotonicity spot-check on both sides of the found boundary.
    for frac in [0.25, 0.5, 0.75] {
        assert!(crash_fires(frac * lo), "crash inside the window missed");
    }
    assert!(!crash_fires(hi * 1.5), "crash past the window fired");
}
