//! Invariants of the simulated substrate that every experiment relies on.

use pic_apps::kmeans::{gaussian_mixture, init_random_centroids, Centroids, KMeansApp};
use pic_core::prelude::*;
use pic_mapreduce::{Dataset, Engine, Timing};
use pic_simnet::{ClusterSpec, TrafficClass};

#[test]
fn simulated_time_only_moves_forward() {
    let engine = Engine::new(ClusterSpec::small());
    let pts = gaussian_mixture(1_000, 5, 2, 100.0, 2.0, 1);
    let data = Dataset::create(&engine, "/si/t", pts, 6);
    let app = KMeansApp::new(5, 2, 1e-3);
    let mut last = engine.now();
    for _ in 0..3 {
        let scope = IterScope::cluster(6, Timing::default_analytic(), 4);
        let init = Centroids::new(init_random_centroids(5, 2, 100.0, 3));
        let _ = app.iterate(&engine, &data, &init, &scope);
        let now = engine.now();
        assert!(now > last, "each job advances the clock");
        last = now;
    }
}

#[test]
fn traffic_counters_never_decrease() {
    let engine = Engine::new(ClusterSpec::small());
    let pts = gaussian_mixture(2_000, 5, 2, 100.0, 2.0, 1);
    let data = Dataset::create(&engine, "/si/tr", pts, 6);
    let app = KMeansApp::new(5, 2, 1e-3);
    let init = Centroids::new(init_random_centroids(5, 2, 100.0, 3));
    let mut prev = engine.traffic();
    let _ = run_ic(&engine, &app, &data, init, &IcOptions::default());
    let now = engine.traffic();
    for class in TrafficClass::ALL {
        assert!(now.get(class) >= prev.get(class), "{class:?} decreased");
    }
    prev = now;
    let _ = engine.traffic();
    assert_eq!(engine.traffic(), prev, "snapshot without work is stable");
}

#[test]
fn bigger_clusters_do_not_slow_down_the_same_pic_job() {
    // Weak sanity on the cluster model: with the partition count fixed,
    // moving the same PIC workload to a bigger cluster must not make it
    // slower (more slots, same traffic).
    let pts = gaussian_mixture(5_000, 10, 3, 100.0, 2.0, 7);
    let init = Centroids::new(init_random_centroids(10, 3, 100.0, 3));
    let app = KMeansApp::new(10, 3, 1e-3);
    let mut times = Vec::new();
    for spec in [ClusterSpec::small(), ClusterSpec::medium()] {
        let engine = Engine::new(spec);
        let data = Dataset::create(&engine, "/si/sc", pts.clone(), 24);
        engine.reset();
        let r = run_pic(
            &engine,
            &app,
            &data,
            init.clone(),
            &PicOptions {
                partitions: 6,
                ..Default::default()
            },
        );
        times.push(r.total_time_s);
    }
    assert!(
        times[1] <= times[0] * 1.2,
        "medium cluster should not be much slower: {times:?}"
    );
}

#[test]
fn ledger_shuffle_matches_job_stats() {
    use pic_mapreduce::traits::{FnMapper, FnReducer};
    use pic_mapreduce::{JobConfig, MapContext, ReduceContext};
    let engine = Engine::new(ClusterSpec::medium());
    let data = Dataset::create(&engine, "/si/ls", (0..5_000u64).collect(), 32);
    let mapper = FnMapper::new(|x: &u64, ctx: &mut MapContext<u64, u64>| {
        ctx.emit(*x % 64, *x);
    });
    let reducer = FnReducer::new(|k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
        ctx.emit((*k, vs.iter().sum()));
    });
    let before = engine.traffic();
    let res = engine.run(
        &JobConfig::new("ls")
            .timing(Timing::default_analytic())
            .reducers(8),
        &data,
        &mapper,
        &reducer,
    );
    let delta = engine.traffic().delta_since(&before);
    assert!(delta.shuffle_total().abs_diff(res.stats.shuffle_bytes) <= 2);
    assert_eq!(
        delta.get(TrafficClass::MapSpill),
        res.stats.map_output_bytes
    );
}

#[test]
fn dataset_load_then_reset_yields_clean_measurements() {
    let engine = Engine::new(ClusterSpec::small());
    let _ = Dataset::create(&engine, "/si/rst", (0..1000u64).collect(), 6);
    assert!(engine.traffic().get(TrafficClass::DfsWrite) > 0);
    engine.reset();
    assert_eq!(engine.now(), 0.0);
    assert_eq!(engine.traffic().network_total(), 0);
}

#[test]
fn partitioned_fanout_moves_less_model_than_replicated() {
    // The smoothing app declares Partitioned fanout (each stencil task
    // reads only its rows); K-means declares Replicated (every task needs
    // all centroids). Per iteration, broadcast traffic must reflect that.
    use pic_apps::smoothing::{noisy_image, SmoothingApp};
    use pic_mapreduce::ByteSize;

    let f = noisy_image(32, 32, 0.05, 3);
    let app = SmoothingApp::new(32, 32, 4, 1e-4);
    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/si/fan", f.rows(), 8);
    engine.reset();
    let r = run_ic(
        &engine,
        &app,
        &data,
        f.clone(),
        &IcOptions {
            max_iterations: Some(3),
            ..Default::default()
        },
    );
    let moved = r.traffic.get(TrafficClass::Broadcast);
    let model_bytes = f.byte_size();
    // Sliced: ~1× model per iteration (3 iterations), not 6× (node count).
    assert!(
        moved <= 3 * model_bytes + 16,
        "sliced fanout moved {moved} bytes for a {model_bytes}-byte model over 3 iterations"
    );
    assert!(moved >= 3 * model_bytes - 16);
}
