//! Property-based tests on the core data structures and invariants.

use pic_core::{convergence, merge, partition};
use pic_mapreduce::traits::{FnCombiner, FnMapper, FnReducer};
use pic_mapreduce::{ByteSize, Dataset, Engine, JobConfig, MapContext, ReduceContext, Timing};
use pic_simnet::transfer;
use pic_simnet::ClusterSpec;
use proptest::prelude::*;
use std::collections::HashMap;

fn analytic(name: &str) -> JobConfig {
    JobConfig::new(name).timing(Timing::default_analytic())
}

proptest! {
    /// The MapReduce engine computes exactly a sequential group-by-sum,
    /// for any input and any reducer/split count.
    #[test]
    fn engine_equals_sequential_group_by(
        data in proptest::collection::vec(0u64..500, 0..300),
        splits in 1usize..8,
        reducers in 1usize..6,
        modulus in 1u64..40,
    ) {
        let engine = Engine::new(ClusterSpec::small());
        let ds = Dataset::create(&engine, "/p/gb", data.clone(), splits);
        let mapper = FnMapper::new(move |x: &u64, ctx: &mut MapContext<u64, u64>| {
            ctx.emit(*x % modulus, *x);
        });
        let reducer = FnReducer::new(|k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
            ctx.emit((*k, vs.iter().sum()));
        });
        let res = engine.run(&analytic("gb").reducers(reducers), &ds, &mapper, &reducer);

        let mut expected: HashMap<u64, u64> = HashMap::new();
        for x in &data {
            *expected.entry(x % modulus).or_insert(0) += x;
        }
        let got: HashMap<u64, u64> = res.output.into_iter().collect();
        prop_assert_eq!(got, expected);
    }

    /// A summing combiner never changes the job's final output, only its
    /// shuffle volume.
    #[test]
    fn combiner_preserves_output(
        data in proptest::collection::vec(0u64..1000, 1..300),
        splits in 1usize..6,
    ) {
        let engine = Engine::new(ClusterSpec::small());
        let ds = Dataset::create(&engine, "/p/cb", data, splits);
        let mapper = FnMapper::new(|x: &u64, ctx: &mut MapContext<u64, u64>| {
            ctx.emit(*x % 7, 1);
        });
        let reducer = FnReducer::new(|k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
            ctx.emit((*k, vs.iter().sum()));
        });
        let combiner = FnCombiner::new(|_: &u64, vs: &mut Vec<u64>| {
            let s: u64 = vs.iter().sum();
            vs.clear();
            vs.push(s);
        });
        let plain = engine.run(&analytic("p"), &ds, &mapper, &reducer);
        let combined = engine.run_with_combiner(&analytic("c"), &ds, &mapper, &combiner, &reducer);
        let mut a = plain.output;
        let mut b = combined.output;
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        prop_assert!(combined.stats.shuffle_bytes <= plain.stats.shuffle_bytes);
    }

    /// Random partitioning is a permutation split: every record appears in
    /// exactly one partition and sizes are balanced to within one.
    #[test]
    fn random_partition_is_balanced_permutation(
        n in 0usize..500,
        parts in 1usize..12,
        seed in any::<u64>(),
    ) {
        let groups = partition::random(0..n as u64, parts, seed);
        prop_assert_eq!(groups.len(), parts);
        let mut all: Vec<u64> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n as u64).collect::<Vec<_>>());
        let min = groups.iter().map(Vec::len).min().unwrap();
        let max = groups.iter().map(Vec::len).max().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// Averaging merge is idempotent on identical sub-models and bounded
    /// by the sub-model range element-wise.
    #[test]
    fn average_merge_is_bounded(
        base in proptest::collection::vec(-100.0f64..100.0, 1..20),
        parts in 1usize..6,
        jitter in -5.0f64..5.0,
    ) {
        let subs: Vec<Vec<f64>> = (0..parts)
            .map(|p| base.iter().map(|v| v + jitter * p as f64).collect())
            .collect();
        let merged = merge::average(&subs);
        for (i, m) in merged.iter().enumerate() {
            let lo = subs.iter().map(|s| s[i]).fold(f64::INFINITY, f64::min);
            let hi = subs.iter().map(|s| s[i]).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(*m >= lo - 1e-9 && *m <= hi + 1e-9);
        }
    }

    /// Distance helpers satisfy metric basics.
    #[test]
    fn distances_are_metrics(
        a in proptest::collection::vec(-1e6f64..1e6, 1..32),
        b in proptest::collection::vec(-1e6f64..1e6, 1..32),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        prop_assert!(convergence::l2_distance(a, b) >= 0.0);
        prop_assert_eq!(convergence::l2_distance(a, a), 0.0);
        let d_ab = convergence::l2_distance(a, b);
        let d_ba = convergence::l2_distance(b, a);
        prop_assert!((d_ab - d_ba).abs() < 1e-9 * d_ab.abs().max(1.0));
        prop_assert!(convergence::max_abs_diff(a, b) <= convergence::l1_distance(a, b) + 1e-9);
    }

    /// `rel_change` is scale-invariant: scaling both vectors by any
    /// non-zero factor leaves the relative change unchanged (up to
    /// rounding), because numerator and denominator scale together.
    #[test]
    fn rel_change_is_scale_invariant(
        a in proptest::collection::vec(-1e3f64..1e3, 1..24),
        b in proptest::collection::vec(1e-3f64..1e3, 1..24),
        scale in 1e-3f64..1e3,
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let sa: Vec<f64> = a.iter().map(|x| x * scale).collect();
        let sb: Vec<f64> = b.iter().map(|x| x * scale).collect();
        let r = convergence::rel_change(a, b);
        let rs = convergence::rel_change(&sa, &sb);
        prop_assert!((r - rs).abs() <= 1e-9 * r.abs().max(1.0), "{} vs {}", r, rs);
    }

    /// `all_within` is monotone in the threshold: passing at `t` implies
    /// passing at any larger `t`, and it agrees with `max_abs_diff`.
    #[test]
    fn all_within_is_monotone_in_threshold(
        a in proptest::collection::vec(-1e3f64..1e3, 1..24),
        b in proptest::collection::vec(-1e3f64..1e3, 1..24),
        t in 1e-6f64..10.0,
        widen in 1.0f64..100.0,
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let within = convergence::all_within(a, b, t);
        prop_assert_eq!(within, convergence::max_abs_diff(a, b) < t);
        if within {
            prop_assert!(convergence::all_within(a, b, t * widen));
        }
    }

    /// Norm-ordering chain `‖·‖∞ ≤ ‖·‖₂ ≤ ‖·‖₁ ≤ n·‖·‖∞`, and the
    /// triangle inequality for the L2 distance.
    #[test]
    fn distance_norms_are_ordered(
        a in proptest::collection::vec(-1e3f64..1e3, 1..24),
        b in proptest::collection::vec(-1e3f64..1e3, 1..24),
        c in proptest::collection::vec(-1e3f64..1e3, 1..24),
    ) {
        let n = a.len().min(b.len()).min(c.len());
        let (a, b, c) = (&a[..n], &b[..n], &c[..n]);
        let linf = convergence::max_abs_diff(a, b);
        let l2 = convergence::l2_distance(a, b);
        let l1 = convergence::l1_distance(a, b);
        let tol = 1e-9 * l1.max(1.0);
        prop_assert!(linf <= l2 + tol, "{} > {}", linf, l2);
        prop_assert!(l2 <= l1 + tol, "{} > {}", l2, l1);
        prop_assert!(l1 <= n as f64 * linf + tol, "{} > {}*{}", l1, n, linf);
        let via_c = convergence::l2_distance(a, c) + convergence::l2_distance(c, b);
        prop_assert!(l2 <= via_c + 1e-9 * via_c.max(1.0));
    }

    /// Shuffle byte-split conserves the total for any cluster and volume.
    #[test]
    fn shuffle_split_conserves_bytes(
        total in 0u64..10_000_000_000,
        nodes in 1usize..64,
    ) {
        let spec = ClusterSpec::medium();
        let nodes = nodes.min(spec.nodes);
        let c = transfer::shuffle(&spec, &(0..nodes), total);
        let sum = c.local_bytes + c.rack_bytes + c.bisection_bytes;
        prop_assert!(sum.abs_diff(total) <= 2, "sum {} vs total {}", sum, total);
        prop_assert!(c.seconds >= 0.0);
    }

    /// ByteSize of composite values equals the sum of parts (no
    /// double-counting in the traffic model).
    #[test]
    fn byte_size_is_additive(
        v in proptest::collection::vec(any::<u64>(), 0..50),
        s in ".{0,40}",
    ) {
        let vec_size = v.byte_size();
        prop_assert_eq!(vec_size, 4 + 8 * v.len() as u64);
        let tuple = (v.clone(), s.clone());
        prop_assert_eq!(tuple.byte_size(), vec_size + s.byte_size());
    }
}
