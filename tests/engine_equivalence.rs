//! Equivalence and determinism proofs for the parallel MapReduce
//! partition/sort/merge pipeline.
//!
//! The engine partitions each map task's output into per-reducer buckets
//! as it emits, then groups every reducer's bucket in parallel with a
//! sort-based merge. These tests pin that pipeline to a small serial
//! reference implementation — the per-reducer `BTreeMap` build the engine
//! used historically — across randomized jobs, and to itself across
//! thread-pool widths.

use std::collections::BTreeMap;

use pic_mapreduce::traits::{FnCombiner, FnMapper, FnReducer};
use pic_mapreduce::{
    bucket_of, kv, Dataset, Engine, JobConfig, JobStats, MapContext, ReduceContext, Timing,
};
use pic_simnet::traffic::TrafficClass;
use pic_simnet::{transfer, ClusterSpec};
use proptest::prelude::*;

/// Test record: (key id, payload). The mapper fans each record out to one
/// or two keys so jobs exercise multi-emit mappers.
type Rec = (u8, u32);

/// Shared map function — the engine mapper and the serial reference both
/// call this, so the two dataflows see identical emissions by construction.
fn map_record(r: &Rec, emit: &mut dyn FnMut(u64, u64)) {
    let (k, v) = *r;
    emit((k % 13) as u64, v as u64);
    if v % 3 == 0 {
        emit(((k as u64) + 7) % 13, (v / 3) as u64);
    }
}

fn engine_mapper() -> impl pic_mapreduce::Mapper<In = Rec, K = u64, V = u64> {
    FnMapper::new(|r: &Rec, ctx: &mut MapContext<u64, u64>| {
        map_record(r, &mut |k, v| ctx.emit(k, v));
    })
}

fn engine_combiner() -> impl pic_mapreduce::Combiner<K = u64, V = u64> {
    FnCombiner::new(|_k: &u64, vs: &mut Vec<u64>| {
        let s: u64 = vs.iter().sum();
        vs.clear();
        vs.push(s);
    })
}

fn engine_reducer() -> impl pic_mapreduce::Reducer<K = u64, V = u64, Out = (u64, u64, u64)> {
    FnReducer::new(
        |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64, u64)>| {
            ctx.emit((*k, vs.iter().sum(), vs.len() as u64));
        },
    )
}

/// Everything the serial reference predicts about a job.
struct Reference {
    output: Vec<(u64, u64, u64)>,
    map_output_records: u64,
    map_output_bytes: u64,
    shuffle_records: u64,
    shuffle_bytes: u64,
}

/// Whole-task sort + run-combine, mirroring Hadoop's combiner pass: stable
/// sort by key, then the sum combiner collapses each key's run. (The
/// engine combines per bucket instead, which is equivalent because every
/// key hashes to exactly one bucket.)
fn combine_task(mut pairs: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    pairs.sort_by_key(|p| p.0);
    let mut out = Vec::new();
    let mut i = 0;
    while i < pairs.len() {
        let run_end = pairs[i..]
            .iter()
            .position(|p| p.0 != pairs[i].0)
            .map_or(pairs.len(), |d| i + d);
        let sum: u64 = pairs[i..run_end].iter().map(|p| p.1).sum();
        out.push((pairs[i].0, sum));
        i = run_end;
    }
    out
}

/// The historical serial dataflow: map each split in order, optionally
/// combine per task, then build one `BTreeMap<K, Vec<V>>` per reducer by
/// inserting pairs in task-major emission order, and reduce buckets in
/// bucket-major, key-ascending order.
fn serial_reference(splits: &[Vec<Rec>], reducers: usize, combine: bool) -> Reference {
    let mut tasks: Vec<Vec<(u64, u64)>> = Vec::new();
    let mut map_output_records = 0u64;
    let mut map_output_bytes = 0u64;
    for split in splits {
        let mut pairs = Vec::new();
        for r in split {
            map_record(r, &mut |k, v| pairs.push((k, v)));
        }
        map_output_records += pairs.len() as u64;
        map_output_bytes += kv::batch_size(&pairs);
        if combine {
            pairs = combine_task(pairs);
        }
        tasks.push(pairs);
    }
    let shuffle_records = tasks.iter().map(|p| p.len() as u64).sum();
    let shuffle_bytes = tasks.iter().map(|p| kv::batch_size(p)).sum();

    let mut buckets: Vec<BTreeMap<u64, Vec<u64>>> = vec![BTreeMap::new(); reducers];
    for pairs in &tasks {
        for (k, v) in pairs {
            buckets[bucket_of(k, reducers)]
                .entry(*k)
                .or_default()
                .push(*v);
        }
    }
    let mut output = Vec::new();
    for bucket in &buckets {
        for (k, vs) in bucket {
            output.push((*k, vs.iter().sum(), vs.len() as u64));
        }
    }
    Reference {
        output,
        map_output_records,
        map_output_bytes,
        shuffle_records,
        shuffle_bytes,
    }
}

/// Run one job on a fresh engine and check every observable against the
/// serial reference: output vector, stats, and ledger deltas.
fn check_job(records: Vec<Rec>, splits: usize, reducers: usize, combine: bool) {
    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/eq/job", records, splits);
    let reference = serial_reference(
        &data
            .splits
            .iter()
            .map(|s| s.records.clone())
            .collect::<Vec<_>>(),
        reducers,
        combine,
    );

    let cfg = JobConfig::new("equivalence")
        .reducers(reducers)
        .timing(Timing::default_analytic());
    let before = engine.traffic();
    let result = if combine {
        engine.run_with_combiner(
            &cfg,
            &data,
            &engine_mapper(),
            &engine_combiner(),
            &engine_reducer(),
        )
    } else {
        engine.run(&cfg, &data, &engine_mapper(), &engine_reducer())
    };
    let delta = engine.traffic().delta_since(&before);

    assert_eq!(result.output, reference.output);
    assert_eq!(
        result.stats.map_output_records,
        reference.map_output_records
    );
    assert_eq!(result.stats.map_output_bytes, reference.map_output_bytes);
    assert_eq!(result.stats.shuffle_records, reference.shuffle_records);
    assert_eq!(result.stats.shuffle_bytes, reference.shuffle_bytes);
    assert_eq!(result.stats.output_records, reference.output.len() as u64);

    // Ledger: the spill charge is the raw map output, and the shuffle
    // classes split the reference's byte total exactly as the transfer
    // model dictates.
    assert_eq!(
        delta.get(TrafficClass::MapSpill),
        reference.map_output_bytes
    );
    let group = 0..engine.spec().nodes;
    let cost = transfer::shuffle(engine.spec(), &group, reference.shuffle_bytes);
    assert_eq!(delta.get(TrafficClass::ShuffleLocal), cost.local_bytes);
    assert_eq!(delta.get(TrafficClass::ShuffleRack), cost.rack_bytes);
    assert_eq!(
        delta.get(TrafficClass::ShuffleBisection),
        cost.bisection_bytes
    );
    assert_eq!(delta.shuffle_total(), reference.shuffle_bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized jobs: arbitrary records, 1–5 splits, 1–8 reducers,
    /// with and without the combiner.
    #[test]
    fn parallel_pipeline_matches_serial_reference(
        records in proptest::collection::vec((any::<u8>(), any::<u32>()), 0..160),
        splits in 1usize..6,
        reducers in 1usize..9,
        combine in any::<bool>(),
    ) {
        check_job(records, splits, reducers, combine);
    }

    /// Single-key skew: every record maps to one key, so one reducer gets
    /// the whole shuffle and the rest get empty buckets.
    #[test]
    fn single_key_skew_matches_serial_reference(
        payloads in proptest::collection::vec(any::<u32>(), 1..120),
        reducers in 1usize..9,
        combine in any::<bool>(),
    ) {
        let records: Vec<Rec> = payloads.into_iter().map(|v| (0u8, v / 3 * 3)).collect();
        check_job(records, 4, reducers, combine);
    }
}

#[test]
fn empty_input_matches_serial_reference() {
    check_job(Vec::new(), 3, 4, false);
    check_job(Vec::new(), 3, 4, true);
}

#[test]
fn bucket_of_spreads_keys_across_reducers() {
    // The hash partitioner must actually distribute: over a modest key
    // set, at least two of four reducers receive keys (all-in-one-bucket
    // would serialize every reduce).
    let buckets: std::collections::HashSet<usize> = (0u64..32).map(|k| bucket_of(&k, 4)).collect();
    assert!(buckets.len() >= 2, "32 keys landed in {buckets:?}");
    assert!(buckets.iter().all(|b| *b < 4));
    // One reducer is always bucket 0.
    assert!((0u64..8).all(|k| bucket_of(&k, 1) == 0));
}

/// The deterministic slice of [`JobStats`] — everything except the
/// measured `host_*` wall-clock diagnostics, which legitimately vary from
/// run to run.
fn deterministic_stats(s: &JobStats) -> impl PartialEq + std::fmt::Debug {
    (
        (
            s.name.clone(),
            s.map_tasks,
            s.reduce_tasks,
            s.map_waves,
            s.reduce_waves,
        ),
        (
            s.map_time_s,
            s.shuffle_time_s,
            s.reduce_time_s,
            s.total_time_s,
        ),
        (
            s.input_records,
            s.map_output_records,
            s.map_output_bytes,
            s.shuffle_records,
            s.shuffle_bytes,
            s.output_records,
        ),
        (
            s.node_local_tasks,
            s.rack_local_tasks,
            s.remote_tasks,
            s.retried_tasks,
        ),
    )
}

#[test]
fn pipeline_is_deterministic_across_pool_widths() {
    let run = || {
        let engine = Engine::new(ClusterSpec::small());
        let records: Vec<Rec> = (0..500u32).map(|i| ((i % 17) as u8, i * 31)).collect();
        let data = Dataset::create(&engine, "/eq/det", records, 7);
        let cfg = JobConfig::new("det")
            .reducers(5)
            .timing(Timing::default_analytic());
        let before = engine.traffic();
        let result = engine.run_with_combiner(
            &cfg,
            &data,
            &engine_mapper(),
            &engine_combiner(),
            &engine_reducer(),
        );
        let delta = engine.traffic().delta_since(&before);
        // Host wall-clock measurements ride along as `host_*` args and
        // legitimately vary; everything else in the trace must not.
        let trace = engine.trace().without_host_args();
        (result.output, result.stats, delta, trace)
    };

    let serial_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool");
    let (out_1, stats_1, traffic_1, trace_1) = serial_pool.install(run);
    let (out_n, stats_n, traffic_n, trace_n) = run(); // default-width pool

    assert_eq!(out_1, out_n, "output must not depend on thread count");
    assert_eq!(
        traffic_1, traffic_n,
        "ledger must not depend on thread count"
    );
    assert_eq!(
        deterministic_stats(&stats_1),
        deterministic_stats(&stats_n),
        "simulated stats must not depend on thread count"
    );
    assert_eq!(
        trace_1, trace_n,
        "trace (modulo host_* args) must not depend on thread count"
    );
    assert!(!out_1.is_empty());
    assert!(!trace_1.spans.is_empty());

    // A second identical run in a fresh 1-thread pool reproduces the
    // 1-thread run bit for bit.
    let serial_pool_2 = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool");
    let (out_again, stats_again, traffic_again, trace_again) = serial_pool_2.install(run);
    assert_eq!(out_1, out_again);
    assert_eq!(traffic_1, traffic_again);
    assert_eq!(
        deterministic_stats(&stats_1),
        deterministic_stats(&stats_again)
    );
    assert_eq!(trace_1, trace_again);
}
