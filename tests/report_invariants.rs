//! Invariants of the trace-driven performance reports (`pic_simnet::report`)
//! over full PIC and IC runs.
//!
//! The headline properties mirror the acceptance criteria of the report
//! subsystem: the critical path tiles the root span exactly (its total
//! equals the root duration within 1e-9 relative), per-iteration byte
//! attribution reconciles **exactly** with the engine's traffic ledger,
//! and the serialized report is byte-identical across rayon pool widths.

use pic_apps::kmeans::{gaussian_mixture, init_random_centroids, Centroids, KMeansApp};
use pic_core::prelude::*;
use pic_mapreduce::{Dataset, Engine, Timing};
use pic_simnet::report::{CriticalPath, PerfReport};
use pic_simnet::trace::check;
use pic_simnet::{ClusterSpec, Trace, TrafficSnapshot};

fn pic_timing() -> Timing {
    Timing::PerRecord {
        map_secs: 5.6e-4,
        reduce_secs: 5e-5,
    }
}

fn pic_opts(partitions: usize) -> PicOptions {
    PicOptions {
        partitions,
        timing: pic_timing(),
        local_secs_per_record: Some(0.6e-6),
        ..Default::default()
    }
}

/// One full k-means PIC run plus the matching IC baseline, each on a
/// fresh engine reset after ingest so traced bytes cover the whole run.
fn run_kmeans_both() -> ((Trace, TrafficSnapshot), (Trace, TrafficSnapshot)) {
    let pts = gaussian_mixture(5_000, 20, 3, 1000.0, 8.0, 7);
    let init = Centroids::new(init_random_centroids(20, 3, 1000.0, 8));
    let app = KMeansApp::new(20, 3, 1e-3);

    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/rp/km", pts.clone(), 24);
    engine.reset();
    run_pic(&engine, &app, &data, init.clone(), &pic_opts(8));
    let pic = (engine.trace(), engine.traffic());

    let engine2 = Engine::new(ClusterSpec::small());
    let data2 = Dataset::create(&engine2, "/rp/km-ic", pts, 24);
    engine2.reset();
    run_ic(
        &engine2,
        &app,
        &data2,
        init,
        &IcOptions {
            max_iterations: Some(30),
            timing: pic_timing(),
            ..Default::default()
        },
    );
    let ic = (engine2.trace(), engine2.traffic());
    (pic, ic)
}

/// The standard runs, computed once and shared across tests.
fn std_runs() -> &'static ((Trace, TrafficSnapshot), (Trace, TrafficSnapshot)) {
    static RUN: std::sync::OnceLock<((Trace, TrafficSnapshot), (Trace, TrafficSnapshot))> =
        std::sync::OnceLock::new();
    RUN.get_or_init(run_kmeans_both)
}

/// Pin the tiling contract of one trace's critical path: segments are
/// chronological, contiguous (each starts where the previous ended),
/// cover exactly `[root.t0, root.t1]`, and their durations telescope to
/// the root duration within 1e-9 relative.
fn assert_path_tiles(trace: &Trace) -> CriticalPath {
    let path = CriticalPath::from_trace(trace).expect("non-empty trace");
    let root = trace
        .spans
        .iter()
        .find(|s| s.id == path.root)
        .expect("path root is in the trace");
    assert!(!path.segments.is_empty());
    assert_eq!(path.segments.first().unwrap().t0, root.t0, "starts at root");
    assert_eq!(path.segments.last().unwrap().t1, root.t1, "ends at root");
    for pair in path.segments.windows(2) {
        assert_eq!(
            pair[0].t1, pair[1].t0,
            "segments are contiguous: {} then {}",
            pair[0].name, pair[1].name
        );
    }
    let tol = 1e-9 * root.duration_s().max(1.0);
    assert!(
        (path.total_s - root.duration_s()).abs() <= tol,
        "critical path total {} != root duration {}",
        path.total_s,
        root.duration_s()
    );
    path
}

#[test]
fn pic_critical_path_totals_the_root_span() {
    let ((trace, _), _) = std_runs();
    let path = assert_path_tiles(trace);
    assert!(path.root_name.starts_with("pic:"), "{}", path.root_name);
    // The path descends to leaves in both phases: solve tasks run on
    // `solve-slot-*` lanes (best-effort), top-off MapReduce tasks on
    // `map-slot-*`/`red-slot-*` lanes — and task compute dominates.
    let lanes: Vec<&str> = path.segments.iter().map(|s| s.lane.as_str()).collect();
    assert!(
        lanes.iter().any(|l| l.starts_with("solve-slot")),
        "{lanes:?}"
    );
    assert!(
        lanes
            .iter()
            .any(|l| l.starts_with("map-slot") || l.starts_with("red-slot")),
        "{lanes:?}"
    );
    assert!(path.by_cat_s().contains_key("task"));
}

#[test]
fn ic_critical_path_totals_the_root_span() {
    let (_, (trace, _)) = std_runs();
    let path = assert_path_tiles(trace);
    assert!(path.root_name.starts_with("ic:"), "{}", path.root_name);
    assert!(path.by_cat_s().contains_key("task"));
}

#[test]
fn every_span_subtree_is_a_valid_path_root() {
    // The tiling contract holds for any root, not just the driver span:
    // spot-check every job span in the PIC trace.
    let ((trace, _), _) = std_runs();
    let mut jobs = 0;
    for s in trace.spans.iter().filter(|s| s.cat == "job") {
        let path = CriticalPath::for_span(trace, s.id);
        let tol = 1e-9 * s.duration_s().max(1.0);
        assert!(
            (path.total_s - s.duration_s()).abs() <= tol,
            "job {}: path total {} != span duration {}",
            s.name,
            path.total_s,
            s.duration_s()
        );
        jobs += 1;
    }
    assert!(jobs > 0, "the PIC run ran MapReduce jobs");
}

#[test]
fn per_iteration_bytes_reconcile_exactly_with_the_ledger() {
    let ((pic_trace, pic_traffic), (ic_trace, ic_traffic)) = std_runs();
    for (trace, traffic) in [(pic_trace, pic_traffic), (ic_trace, ic_traffic)] {
        let report = PerfReport::from_trace(trace);
        report.reconcile(traffic).unwrap();
        // Exact, class-by-class: attributed-per-iteration plus outside
        // equals the ledger snapshot.
        assert_eq!(report.attributed_bytes(), *traffic);
        assert!(!report.iterations.is_empty());
        // The paper's Fig. 2 decomposition is present: shuffle and
        // model-update bytes both land inside iterations.
        let shuffle: u64 = report
            .iterations
            .iter()
            .map(|i| i.bytes.shuffle_total())
            .sum();
        let model: u64 = report
            .iterations
            .iter()
            .map(|i| i.bytes.model_update_total())
            .sum();
        assert!(shuffle > 0, "iterations carry shuffle bytes");
        assert!(model > 0, "iterations carry model-update bytes");
    }
}

#[test]
fn report_json_is_identical_across_pool_widths() {
    let serial_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool");
    let ((pic_1, traffic_1), (ic_1, _)) = serial_pool.install(run_kmeans_both);
    let ((pic_n, traffic_n), (ic_n, _)) = std_runs();

    check::validate(&pic_1, &traffic_1).unwrap();
    assert_eq!(traffic_1, *traffic_n);

    // The report is a pure function of simulated time, so serializing it
    // from a 1-thread run and an n-thread run gives identical bytes.
    assert_eq!(
        PerfReport::from_trace(&pic_1).to_json(0),
        PerfReport::from_trace(pic_n).to_json(0)
    );
    assert_eq!(
        PerfReport::from_trace(&ic_1).to_json(0),
        PerfReport::from_trace(ic_n).to_json(0)
    );
    // The text rendering inherits the same determinism.
    assert_eq!(
        PerfReport::from_trace(&pic_1).render(40),
        PerfReport::from_trace(pic_n).render(40)
    );
}

#[test]
fn rendered_report_carries_the_headline_sections() {
    let ((trace, _), _) = std_runs();
    let report = PerfReport::from_trace(trace);
    let text = report.render(40);
    assert!(text.contains("critical path"));
    assert!(text.contains("per-iteration decomposition"));
    assert!(text.contains("be-iteration"));
    assert!(text.contains("model-update"));
    let json = report.to_json(0);
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert!(!json.contains("host_"), "host args never reach the JSON");
}
