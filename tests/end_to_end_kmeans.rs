//! End-to-end K-means: the paper's headline claims at test scale.

use pic_apps::kmeans::{
    gaussian_mixture, init_random_centroids, jagota_index, Centroids, KMeansApp,
};
use pic_core::prelude::*;
use pic_mapreduce::{Dataset, Engine, Timing};
use pic_simnet::{ClusterSpec, TrafficClass};

fn timing() -> Timing {
    Timing::PerRecord {
        map_secs: 2e-4,
        reduce_secs: 5e-5,
    }
}

/// The standard pair: a geometry where partitions keep enough points per
/// cluster (the regime the paper operates in) and the baseline has real
/// work. Computed once and shared across tests.
fn std_pair() -> &'static (IcReport<Centroids>, PicReport<Centroids>) {
    static PAIR: std::sync::OnceLock<(IcReport<Centroids>, PicReport<Centroids>)> =
        std::sync::OnceLock::new();
    PAIR.get_or_init(|| run_pair(20_000, 100, 24))
}

/// Seeds for the standard geometry. Chosen (by scanning) so the fixed
/// random draw lands in the paper's operating regime — partitions retain
/// points from every cluster and the random initial model is genuinely
/// poor — under the vendored `rand` stand-in's xoshiro stream.
const DATA_SEED: u64 = 7;
const INIT_SEED: u64 = 8;

fn run_pair(n: usize, k: usize, partitions: usize) -> (IcReport<Centroids>, PicReport<Centroids>) {
    let pts = gaussian_mixture(n, k, 3, 1000.0, 8.0, DATA_SEED);
    let init = Centroids::new(init_random_centroids(k, 3, 1000.0, INIT_SEED));
    let app = KMeansApp::new(k, 3, 1e-3);

    let e1 = Engine::new(ClusterSpec::small());
    let d1 = Dataset::create(&e1, "/t/km", pts.clone(), 24);
    e1.reset();
    let ic = run_ic(
        &e1,
        &app,
        &d1,
        init.clone(),
        &IcOptions {
            timing: timing(),
            ..Default::default()
        },
    );

    let e2 = Engine::new(ClusterSpec::small());
    let d2 = Dataset::create(&e2, "/t/km", pts, 24);
    e2.reset();
    let pic = run_pic(
        &e2,
        &app,
        &d2,
        init,
        &PicOptions {
            partitions,
            timing: timing(),
            local_secs_per_record: Some(0.6e-6),
            ..Default::default()
        },
    );
    (ic, pic)
}

#[test]
fn pic_is_faster_than_ic() {
    let (ic, pic) = std_pair();
    let speedup = ic.total_time_s / pic.total_time_s;
    // At test scale (20k points) fixed overheads eat much of the win; the
    // full-size regime is exercised by `repro --exp fig9/fig10`, which
    // lands at 2.6–3.0x. Here we assert the direction with margin.
    assert!(speedup > 1.2, "speedup {speedup}");
}

#[test]
fn topoff_needs_far_fewer_iterations() {
    let (ic, pic) = std_pair();
    assert!(
        pic.topoff_iterations * 2 < ic.iterations,
        "top-off {} vs IC {}",
        pic.topoff_iterations,
        ic.iterations
    );
}

#[test]
fn pic_intermediate_data_collapses() {
    let (ic, pic) = std_pair();
    let ic_spill = ic.traffic.get(TrafficClass::MapSpill);
    let pic_spill = pic.traffic().get(TrafficClass::MapSpill);
    assert!(
        pic_spill * 3 < ic_spill,
        "PIC spill {pic_spill} vs IC {ic_spill}"
    );
}

#[test]
fn pic_model_updates_collapse() {
    let (ic, pic) = std_pair();
    assert!(pic.traffic().model_update_total() < ic.traffic.model_update_total());
}

#[test]
fn clustering_quality_is_preserved() {
    let n = 20_000;
    let k = 100;
    let pts = gaussian_mixture(n, k, 3, 1000.0, 8.0, DATA_SEED);
    let (ic, pic) = std_pair();
    let q_ic = jagota_index(&pts, &ic.final_model);
    let q_pic = jagota_index(&pts, &pic.final_model);
    let diff = (q_pic - q_ic).abs() / q_ic;
    assert!(
        diff < 0.10,
        "Jagota difference {diff} (ic {q_ic}, pic {q_pic})"
    );
}

#[test]
fn local_iterations_follow_table1_shape() {
    let (_, pic) = std_pair();
    let maxes = pic.max_local_iterations();
    assert!(!maxes.is_empty());
    // First BE iteration does the heavy lifting; later ones need only a
    // couple of local iterations.
    for (i, &m) in maxes.iter().enumerate().skip(1) {
        assert!(
            m <= maxes[0],
            "BE iter {i} needed {m} local iters > first's {}",
            maxes[0]
        );
    }
}

#[test]
fn results_are_deterministic_across_runs() {
    let (ic1, pic1) = run_pair(5_000, 20, 8);
    let (ic2, pic2) = run_pair(5_000, 20, 8);
    assert_eq!(ic1.iterations, ic2.iterations);
    assert_eq!(ic1.total_time_s, ic2.total_time_s);
    assert_eq!(ic1.final_model, ic2.final_model);
    assert_eq!(pic1.be_iterations, pic2.be_iterations);
    assert_eq!(pic1.total_time_s, pic2.total_time_s);
    assert_eq!(pic1.final_model, pic2.final_model);
}
