//! Multi-tenant stream invariants (DESIGN.md §13), at the integration
//! level: the full profile-derivation → workload-generation → cluster-
//! scheduler pipeline.
//!
//! * Determinism: the same seed must produce a byte-identical
//!   `TenancyReport` JSON no matter how wide the rayon pool running the
//!   profile derivation is.
//! * Exactness: every tenant's converged model must be bit-identical to
//!   its solo run — contention re-times iterations, it never re-computes
//!   them.
//! * Sanity: per-job rows must be monotone (arrive ≤ admit ≤ finish) with
//!   non-negative queueing delay.

use pic_bench::experiments::{tenancy, ExperimentCtx};

fn small_ctx() -> ExperimentCtx {
    ExperimentCtx { scale: 0.01 }
}

/// ≥16-job mixed IC/PIC stream at the 1k-node preset: byte-identical
/// report JSON across pool widths, and the packing comparison built from
/// profiles whose repeat solo runs reproduced their models exactly.
#[test]
fn mixed_stream_is_pool_width_independent_and_models_exact() {
    let ctx = small_ctx();
    let wl = tenancy::default_workload();
    assert!(wl.jobs >= 16, "the acceptance stream is at least 16 jobs");

    let run = || {
        let set = tenancy::profiles(&ctx).expect("profiles");
        let report = tenancy::stream_with("1k", &wl, &set).expect("stream");
        (tenancy::models_exact(&set), report.to_json(0))
    };

    let serial_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool");
    let (exact_1, json_1) = serial_pool.install(run);
    let (exact_n, json_n) = run(); // default-width pool

    assert!(exact_1, "every solo rerun must reproduce its model exactly");
    assert!(exact_n, "every solo rerun must reproduce its model exactly");
    assert_eq!(
        json_1, json_n,
        "TenancyReport JSON must not depend on rayon pool width"
    );
}

/// Row-level sanity on the default stream: 16 rows, monotone times,
/// non-negative queueing, grants within requests.
#[test]
fn stream_rows_are_monotone_and_within_grants() {
    let ctx = small_ctx();
    let wl = tenancy::default_workload();
    let set = tenancy::profiles(&ctx).expect("profiles");
    let report = tenancy::stream_with("1k", &wl, &set).expect("stream");

    assert_eq!(report.rows.len(), wl.jobs);
    for r in &report.rows {
        assert!(
            r.arrival_s <= r.admitted_s && r.admitted_s <= r.finish_s,
            "job {}: times must be monotone (arrive {} admit {} finish {})",
            r.id,
            r.arrival_s,
            r.admitted_s,
            r.finish_s
        );
        assert!(r.queue_delay_s >= 0.0, "job {}: negative queueing", r.id);
        assert!(r.tt_quality_s >= 0.0, "job {}: negative tt-quality", r.id);
        assert!(r.contention_s >= 0.0, "job {}: negative contention", r.id);
        assert!(
            r.granted_nodes >= 1 && r.granted_nodes <= r.requested_nodes,
            "job {}: grant {} outside 1..={}",
            r.id,
            r.granted_nodes,
            r.requested_nodes
        );
        assert!(report.makespan_s >= r.finish_s, "makespan covers every job");
    }
}
