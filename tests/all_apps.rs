//! Cross-crate smoke of every case study: each app must run through both
//! drivers on the simulated cluster and produce a sound result.

use pic_core::prelude::*;
use pic_mapreduce::{Dataset, Engine, Timing};
use pic_simnet::ClusterSpec;

fn timing() -> Timing {
    Timing::default_analytic()
}

#[test]
fn kmeans_both_drivers() {
    use pic_apps::kmeans::{gaussian_mixture, init_random_centroids, Centroids, KMeansApp};
    let pts = gaussian_mixture(2_000, 10, 3, 100.0, 2.0, 1);
    let init = Centroids::new(init_random_centroids(10, 3, 100.0, 2));
    let app = KMeansApp::new(10, 3, 1e-3);

    let e = Engine::new(ClusterSpec::small());
    let d = Dataset::create(&e, "/a/km", pts, 12);
    let ic = run_ic(
        &e,
        &app,
        &d,
        init.clone(),
        &IcOptions {
            timing: timing(),
            ..Default::default()
        },
    );
    assert!(ic.converged);
    let pic = run_pic(
        &e,
        &app,
        &d,
        init,
        &PicOptions {
            partitions: 4,
            timing: timing(),
            ..Default::default()
        },
    );
    assert!(pic.topoff_converged);
}

#[test]
fn pagerank_both_drivers() {
    use pic_apps::pagerank::{block_local_graph, PageRankApp, PartitionMode};
    let g = block_local_graph(1_000, 4, 2, 5, 0.9, 3);
    let app = PageRankApp::new(g.clone(), 4, PartitionMode::Block, 1);

    let e = Engine::new(ClusterSpec::small());
    let d = Dataset::create(&e, "/a/pr", g.records(), 12);
    let ic = run_ic(
        &e,
        &app,
        &d,
        app.initial_model(),
        &IcOptions {
            timing: timing(),
            ..Default::default()
        },
    );
    assert_eq!(ic.iterations, 10);
    let pic = run_pic(
        &e,
        &app,
        &d,
        app.initial_model(),
        &PicOptions {
            partitions: 4,
            timing: timing(),
            ..Default::default()
        },
    );
    assert_eq!(pic.be_iterations, 3, "fixed BE budget");
    assert_eq!(pic.topoff_iterations, 3, "fixed top-off budget");
    // Ranks stay positive and finite.
    assert!(pic
        .final_model
        .ranks
        .iter()
        .all(|r| r.is_finite() && *r > 0.0));
}

#[test]
fn neuralnet_both_drivers() {
    use pic_apps::neuralnet::{ocr_like_split, Mlp, NeuralNetApp};
    let (train, valid) = ocr_like_split(300, 60, 3, 8, 0.08, 5);
    let mut app = NeuralNetApp::new(valid.clone());
    app.max_iterations = 25;
    let init = Mlp::random(8, 6, 3, 7);

    let e = Engine::new(ClusterSpec::small());
    let d = Dataset::create(&e, "/a/nn", train, 6);
    let ic = run_ic(
        &e,
        &app,
        &d,
        init.clone(),
        &IcOptions {
            timing: timing(),
            ..Default::default()
        },
    );
    let pic = run_pic(
        &e,
        &app,
        &d,
        init.clone(),
        &PicOptions {
            partitions: 3,
            timing: timing(),
            ..Default::default()
        },
    );
    let base = init.misclassification_rate(&valid);
    assert!(ic.final_model.misclassification_rate(&valid) < base);
    assert!(pic.final_model.misclassification_rate(&valid) < base);
}

#[test]
fn linsolve_both_drivers_agree_on_unique_solution() {
    use pic_apps::linsolve::{diag_dominant_system, LinSolveApp};
    let sys = diag_dominant_system(60, 0.3, 9);
    let app = LinSolveApp::new(60, 4, 1e-9).with_exact(sys.exact.clone());

    let e = Engine::new(ClusterSpec::small());
    let d = Dataset::create(&e, "/a/ls", sys.rows.clone(), 6);
    let ic = run_ic(
        &e,
        &app,
        &d,
        vec![0.0; 60],
        &IcOptions {
            timing: timing(),
            ..Default::default()
        },
    );
    let pic = run_pic(
        &e,
        &app,
        &d,
        vec![0.0; 60],
        &PicOptions {
            partitions: 4,
            timing: timing(),
            ..Default::default()
        },
    );
    assert!(ic.converged && pic.topoff_converged);
    assert!(sys.error(&ic.final_model) < 1e-6);
    assert!(sys.error(&pic.final_model) < 1e-6);
}

#[test]
fn smoothing_both_drivers_agree_on_unique_solution() {
    use pic_apps::smoothing::{noisy_image, SmoothingApp};
    let f = noisy_image(16, 16, 0.05, 11);
    let app = SmoothingApp::new(16, 16, 4, 1e-5);

    let e = Engine::new(ClusterSpec::small());
    let d = Dataset::create(&e, "/a/sm", f.rows(), 8);
    let ic = run_ic(
        &e,
        &app,
        &d,
        f.clone(),
        &IcOptions {
            timing: timing(),
            ..Default::default()
        },
    );
    let pic = run_pic(
        &e,
        &app,
        &d,
        f.clone(),
        &PicOptions {
            partitions: 4,
            timing: timing(),
            ..Default::default()
        },
    );
    assert!(ic.converged && pic.topoff_converged);
    assert!(
        ic.final_model.rms_diff(&pic.final_model) < 1e-3,
        "unique fixed point: {}",
        ic.final_model.rms_diff(&pic.final_model)
    );
}

#[test]
fn all_apps_run_on_the_medium_cluster_too() {
    use pic_apps::kmeans::{gaussian_mixture, init_random_centroids, Centroids, KMeansApp};
    let pts = gaussian_mixture(2_000, 10, 3, 100.0, 2.0, 1);
    let init = Centroids::new(init_random_centroids(10, 3, 100.0, 2));
    let app = KMeansApp::new(10, 3, 1e-3);
    let e = Engine::new(ClusterSpec::medium());
    let d = Dataset::create(&e, "/a/km64", pts, 64);
    let pic = run_pic(
        &e,
        &app,
        &d,
        init,
        &PicOptions {
            partitions: 16,
            timing: timing(),
            ..Default::default()
        },
    );
    assert!(pic.topoff_converged);
}
