//! Invariants of the quality-of-convergence telemetry (DESIGN.md §10)
//! over full IC and PIC runs of every case study:
//!
//! * error trajectories are **strictly monotone in `t_s`** — each probe
//!   lands at a later simulated instant than the previous one, in both
//!   drivers (the PIC curve spans the BE → top-off handoff);
//! * the last trajectory point's error equals the converged model's
//!   probe value **exactly** (`==`) — the curve ends where the probe of
//!   the returned model says it does, so report, trace and driver all
//!   describe the same run;
//! * `be_final_error` is populated whenever the app defines an error
//!   metric, and equals the probe of the handoff model.

use pic_core::prelude::*;
use pic_core::report::{IcReport, PicReport, TrajectoryPoint};
use pic_mapreduce::{Dataset, Engine, Timing};
use pic_simnet::ClusterSpec;

fn timing() -> Timing {
    Timing::default_analytic()
}

fn assert_strictly_monotone_t(name: &str, traj: &[TrajectoryPoint]) {
    assert!(!traj.is_empty(), "{name}: empty trajectory");
    for pair in traj.windows(2) {
        assert!(
            pair[1].t_s > pair[0].t_s,
            "{name}: trajectory not strictly monotone in t_s: {} then {}",
            pair[0].t_s,
            pair[1].t_s
        );
    }
}

/// The shared contract: both curves strictly monotone, both final points
/// reconciling exactly with a fresh probe of the returned models, and
/// the BE handoff error recorded and reconciling with the BE model.
fn assert_quality_invariants<A: QualityProbe>(
    name: &str,
    app: &A,
    ic: &IcReport<A::Model>,
    pic: &PicReport<A::Model>,
) {
    assert_strictly_monotone_t(&format!("{name}/ic"), &ic.trajectory);
    assert_strictly_monotone_t(&format!("{name}/pic"), &pic.trajectory);

    let probe = |m: &A::Model| -> f64 {
        app.quality(m)
            .objective
            .unwrap_or_else(|| panic!("{name}: probe objective is None"))
    };
    assert_eq!(
        ic.trajectory.last().unwrap().error,
        probe(&ic.final_model),
        "{name}/ic: last trajectory error != probe of final model"
    );
    assert_eq!(
        pic.trajectory.last().unwrap().error,
        probe(&pic.final_model),
        "{name}/pic: last trajectory error != probe of final model"
    );
    let be_err = pic
        .be_final_error
        .unwrap_or_else(|| panic!("{name}: be_final_error is None"));
    assert_eq!(
        be_err,
        probe(&pic.be_model),
        "{name}: be_final_error != probe of BE handoff model"
    );
}

fn run_both<A: PicApp + QualityProbe>(
    app: &A,
    records: Vec<A::Record>,
    init: A::Model,
    blocks: usize,
    partitions: usize,
) -> (IcReport<A::Model>, PicReport<A::Model>) {
    let e = Engine::new(ClusterSpec::small());
    let d = Dataset::create(&e, "/qi/data", records, blocks);
    let ic = run_ic(
        &e,
        app,
        &d,
        init.clone(),
        &IcOptions {
            timing: timing(),
            ..Default::default()
        },
    );
    let pic = run_pic(
        &e,
        app,
        &d,
        init,
        &PicOptions {
            partitions,
            timing: timing(),
            ..Default::default()
        },
    );
    (ic, pic)
}

#[test]
fn kmeans_quality_invariants() {
    use pic_apps::kmeans::{gaussian_mixture, init_random_centroids, Centroids, KMeansApp};
    let pts = gaussian_mixture(2_000, 10, 3, 100.0, 2.0, 1);
    let init = Centroids::new(init_random_centroids(10, 3, 100.0, 2));
    let app = KMeansApp::new(10, 3, 1e-3);
    let sample: Vec<_> = pts.iter().step_by(4).cloned().collect();
    let reference = app.solve_reference(&sample, &init, 100);
    let app = app.with_eval_sample(sample, &reference);
    let (ic, pic) = run_both(&app, pts, init, 12, 4);
    assert_quality_invariants("kmeans", &app, &ic, &pic);
}

#[test]
fn pagerank_quality_invariants() {
    use pic_apps::pagerank::{block_local_graph, PageRankApp, PartitionMode};
    let g = block_local_graph(1_000, 4, 2, 5, 0.9, 3);
    let app = PageRankApp::new(g.clone(), 4, PartitionMode::Block, 1);
    let reference = app.solve_reference(50);
    let app = app.with_reference(reference);
    let init = app.initial_model();
    let (ic, pic) = run_both(&app, g.records(), init, 12, 4);
    assert_quality_invariants("pagerank", &app, &ic, &pic);
}

#[test]
fn neuralnet_quality_invariants() {
    use pic_apps::neuralnet::{ocr_like_split, Mlp, NeuralNetApp};
    let (train, valid) = ocr_like_split(300, 60, 3, 8, 0.08, 5);
    let mut app = NeuralNetApp::new(valid);
    app.max_iterations = 25;
    let init = Mlp::random(8, 6, 3, 7);
    let (ic, pic) = run_both(&app, train, init, 6, 3);
    assert_quality_invariants("neuralnet", &app, &ic, &pic);
}

#[test]
fn linsolve_quality_invariants() {
    use pic_apps::linsolve::{diag_dominant_system, LinSolveApp};
    let sys = diag_dominant_system(60, 0.3, 9);
    let app = LinSolveApp::new(60, 4, 1e-9)
        .with_exact(sys.exact.clone())
        .with_rows(sys.rows.clone());
    let (ic, pic) = run_both(&app, sys.rows.clone(), vec![0.0; 60], 6, 4);
    assert_quality_invariants("linsolve", &app, &ic, &pic);
}

#[test]
fn smoothing_quality_invariants() {
    use pic_apps::smoothing::{noisy_image, SmoothingApp};
    let f = noisy_image(16, 16, 0.05, 11);
    let app = SmoothingApp::new(16, 16, 4, 1e-5).with_observed(f.clone());
    let (ic, pic) = run_both(&app, f.rows(), f.clone(), 8, 4);
    assert_quality_invariants("smoothing", &app, &ic, &pic);
}
