//! The paper's §III.B special case, tested exactly: "If the number of
//! partitions is one, the merge function becomes the identity function
//! ... and the BE_converged function terminates the best-effort process
//! after only one iteration, the best-effort phase of PIC degenerates to
//! the conventional implementation."
//!
//! For deterministic apps (the linear solver, smoothing), one partition ×
//! one local iteration must produce bit-identical models to one IC
//! iteration — PIC adds no numerical approximation in the degenerate
//! configuration.

use pic_apps::linsolve::{diag_dominant_system, LinSolveApp};
use pic_apps::smoothing::{noisy_image, SmoothingApp};
use pic_core::prelude::*;
use pic_mapreduce::{Dataset, Engine, Timing};
use pic_simnet::ClusterSpec;

#[test]
fn linsolve_one_partition_one_local_iteration_equals_one_ic_iteration() {
    let n = 40;
    let sys = diag_dominant_system(n, 0.3, 5);
    let app = LinSolveApp::new(n, 1, 1e-12);
    let x0 = vec![0.0; n];

    // One IC iteration via the engine.
    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/deg/ls", sys.rows.clone(), 4);
    let ic = run_ic(
        &engine,
        &app,
        &data,
        x0.clone(),
        &IcOptions {
            max_iterations: Some(1),
            timing: Timing::default_analytic(),
            ..Default::default()
        },
    );

    // PIC with one partition, one local iteration, one BE round, no
    // top-off.
    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/deg/ls", sys.rows.clone(), 4);
    let pic = run_pic(
        &engine,
        &app,
        &data,
        x0,
        &PicOptions {
            partitions: 1,
            local_cap: Some(1),
            max_be_iterations: Some(1),
            max_topoff_iterations: Some(1),
            timing: Timing::default_analytic(),
            ..Default::default()
        },
    );

    // The BE-phase model (before top-off) must equal the IC model exactly:
    // same sweep, same arithmetic.
    assert_eq!(
        pic.be_model, ic.final_model,
        "degenerate PIC must be bit-identical"
    );
    assert_eq!(pic.be_iterations, 1);
    assert_eq!(pic.local_iterations, vec![vec![1]]);
}

#[test]
fn smoothing_one_partition_one_local_iteration_equals_one_sweep() {
    let f = noisy_image(12, 12, 0.05, 7);
    let app = SmoothingApp::new(12, 12, 1, 1e-12);
    let expected = app.sequential_sweep(&f, &f);

    let engine = Engine::new(ClusterSpec::small());
    let data = Dataset::create(&engine, "/deg/sm", f.rows(), 4);
    let pic = run_pic(
        &engine,
        &app,
        &data,
        f.clone(),
        &PicOptions {
            partitions: 1,
            local_cap: Some(1),
            max_be_iterations: Some(1),
            max_topoff_iterations: Some(1),
            timing: Timing::default_analytic(),
            ..Default::default()
        },
    );
    assert!(
        pic.be_model.max_diff(&expected) < 1e-15,
        "one-tile local sweep must equal a full sequential sweep"
    );
}

#[test]
fn merge_with_one_partition_is_identity_for_every_app() {
    // K-means.
    {
        use pic_apps::kmeans::{Centroids, KMeansApp};
        use pic_core::app::PicApp;
        let app = KMeansApp::new(3, 2, 1e-3);
        let m = Centroids::new(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let merged = app.merge(std::slice::from_ref(&m), &m);
        for (a, b) in merged.coords.iter().zip(&m.coords) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }
    // Linear solver.
    {
        use pic_core::app::PicApp;
        let app = LinSolveApp::new(4, 1, 1e-9);
        let m = vec![1.0, -2.0, 3.0, -4.0];
        assert_eq!(app.merge(std::slice::from_ref(&m), &m), m);
    }
    // Smoothing.
    {
        use pic_core::app::PicApp;
        let app = SmoothingApp::new(6, 6, 1, 1e-9);
        let img = noisy_image(6, 6, 0.01, 3);
        let merged = app.merge(std::slice::from_ref(&img), &img);
        assert!(merged.max_diff(&img) < 1e-15);
    }
}
