//! Acceptance invariants for the time-resolved utilization telemetry
//! (DESIGN.md §11), pinned on the report suite's k-means configuration
//! (paper Fig. 2 at bench scale: 20k points, k=100, 64-node medium
//! cluster, 256 splits, 64 partitions) for both the IC baseline and PIC:
//!
//! 1. per-class utilization integrals equal the ledger byte totals
//!    **exactly** (`==`);
//! 2. slot occupancy never exceeds the topology's slot counts, and the
//!    busy integral matches the summed task-span durations within 1e-9
//!    relative;
//! 3. the utilization series are identical across rayon pool widths
//!    (the report is a pure function of simulated time);
//! 4. PIC spends strictly fewer bisection saturated-seconds than IC —
//!    the paper's claim, quantified.

use pic_apps::kmeans::{gaussian_mixture, init_random_centroids, Centroids, KMeansApp};
use pic_core::prelude::*;
use pic_mapreduce::{Dataset, Engine, Timing};
use pic_simnet::timeline::render_side_by_side;
use pic_simnet::{ClusterSpec, Trace, TrafficClass, TrafficSnapshot, UtilizationReport};

// The fig2 bench-scale geometry (scale 0.05 of the paper's 400k points),
// mirrored from the report suite — the root crate cannot depend on
// pic-bench, so the configuration is reconstructed here.
const N: usize = 20_000;
const K: usize = 100;
const DIM: usize = 3;
const SPLITS: usize = 256;
const PARTITIONS: usize = 64;

fn fig2_timing() -> Timing {
    Timing::PerRecord {
        map_secs: 5.6e-4,
        reduce_secs: 5e-5,
    }
}

/// Both fig2 runs on fresh engines: `(ic, pic)` as `(trace, ledger)`.
fn run_fig2() -> ((Trace, TrafficSnapshot), (Trace, TrafficSnapshot)) {
    let app = KMeansApp::new(K, DIM, 1.0);
    let pts = gaussian_mixture(N, K, DIM, 1000.0, 40.0, 21);
    let init = Centroids::new(init_random_centroids(K, DIM, 1000.0, 5));

    let ic_engine = Engine::new(ClusterSpec::medium());
    let data = Dataset::create(&ic_engine, "/tl/km", pts.clone(), SPLITS);
    ic_engine.reset();
    run_ic(
        &ic_engine,
        &app,
        &data,
        init.clone(),
        &IcOptions {
            timing: fig2_timing(),
            ..Default::default()
        },
    );
    let ic = (ic_engine.trace(), ic_engine.traffic());

    let pic_engine = Engine::new(ClusterSpec::medium());
    let data = Dataset::create(&pic_engine, "/tl/km", pts, SPLITS);
    pic_engine.reset();
    run_pic(
        &pic_engine,
        &app,
        &data,
        init,
        &PicOptions {
            partitions: PARTITIONS,
            timing: fig2_timing(),
            local_secs_per_record: Some(0.6e-6),
            ..Default::default()
        },
    );
    (ic, (pic_engine.trace(), pic_engine.traffic()))
}

/// The standard runs, computed once and shared across tests.
fn std_run() -> &'static ((Trace, TrafficSnapshot), (Trace, TrafficSnapshot)) {
    static RUN: std::sync::OnceLock<((Trace, TrafficSnapshot), (Trace, TrafficSnapshot))> =
        std::sync::OnceLock::new();
    RUN.get_or_init(run_fig2)
}

fn reports() -> (UtilizationReport, UtilizationReport) {
    let (ic, pic) = std_run();
    let spec = ClusterSpec::medium();
    (
        UtilizationReport::from_trace(&ic.0, &spec),
        UtilizationReport::from_trace(&pic.0, &spec),
    )
}

#[test]
fn utilization_integrals_match_the_ledger_exactly() {
    let (ic, pic) = std_run();
    let (ic_util, pic_util) = reports();
    ic_util.reconcile(&ic.1).unwrap();
    pic_util.reconcile(&pic.1).unwrap();
    // Spot-check the equality is over real traffic, not empty series.
    for (util, ledger) in [(&ic_util, &ic.1), (&pic_util, &pic.1)] {
        for class in [TrafficClass::MapSpill, TrafficClass::ModelUpdate] {
            let total: u64 = util.class_bytes[class.label()].iter().sum();
            assert_eq!(total, ledger.get(class), "class {}", class.label());
            assert!(total > 0, "{} moved no bytes", class.label());
        }
        // Link rollups preserve the byte totals too.
        let link_total: u64 = util.links.values().map(|l| l.total_bytes).sum();
        let ledger_total: u64 = TrafficClass::ALL.into_iter().map(|c| ledger.get(c)).sum();
        assert_eq!(link_total, ledger_total);
    }
}

#[test]
fn slot_occupancy_is_bounded_and_busy_time_reconciles() {
    let (ic, pic) = std_run();
    let (ic_util, pic_util) = reports();
    for (util, (trace, _)) in [(&ic_util, ic), (&pic_util, pic)] {
        assert!(!util.slots.is_empty(), "runs schedule tasks");
        for (group, series) in &util.slots {
            assert!(
                series.peak_occupancy <= series.slots as f64 + 1e-9,
                "{group}: peak occupancy {} over {} slots",
                series.peak_occupancy,
                series.slots
            );
            // Busy integral == summed task-span durations, 1e-9 relative,
            // recomputed here independently of the report's own bookkeeping.
            let span_total: f64 = trace
                .spans
                .iter()
                .filter(|s| s.cat == "task" && s.lane.starts_with(&format!("{group}-slot-")))
                .map(|s| s.duration_s())
                .sum();
            let tol = 1e-9 * span_total.abs().max(series.busy_integral_s.abs()).max(1.0);
            assert!(
                (series.busy_integral_s - span_total).abs() <= tol,
                "{group}: busy integral {} vs task spans {span_total}",
                series.busy_integral_s
            );
            assert!(span_total > 0.0, "{group}: no task time");
        }
    }
    // The runs exercise every slot group the drivers use.
    assert!(ic_util.slots.contains_key("map"));
    assert!(ic_util.slots.contains_key("red"));
    assert!(pic_util.slots.contains_key("solve"));
}

#[test]
fn utilization_is_identical_across_pool_widths() {
    let serial_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool");
    let (ic_1, pic_1) = serial_pool.install(run_fig2);
    let (ic_n, pic_n) = std_run();
    let spec = ClusterSpec::medium();
    // The whole report — every series, rollup and saturation split — is
    // a pure function of simulated time, so it must be equal (not just
    // close) whatever the host parallelism was.
    assert_eq!(
        UtilizationReport::from_trace(&ic_1.0, &spec),
        UtilizationReport::from_trace(&ic_n.0, &spec)
    );
    assert_eq!(
        UtilizationReport::from_trace(&pic_1.0, &spec),
        UtilizationReport::from_trace(&pic_n.0, &spec)
    );
}

#[test]
fn pic_saturates_the_bisection_for_less_time_than_ic() {
    let (ic_util, pic_util) = reports();
    let (ic_sat, pic_sat) = (
        &ic_util.bisection_saturation,
        &pic_util.bisection_saturation,
    );
    // IC shuffles across the 6-rack bisection every iteration; at the
    // medium cluster's 1.07:1 oversubscription those windows run at
    // full utilization, so IC must show real saturated time.
    assert!(
        ic_sat.total_s > 0.0,
        "IC never saturates the bisection: {ic_sat:?}"
    );
    assert!(
        pic_sat.total_s < ic_sat.total_s,
        "PIC saturated {:.3}s, IC {:.3}s",
        pic_sat.total_s,
        ic_sat.total_s
    );
    // The split attributes IC's saturation to its iterations, and PIC's
    // best-effort phase adds none of its own shuffle saturation.
    assert!(ic_sat.ic_s > 0.0, "{ic_sat:?}");
    assert_eq!(ic_sat.be_s, 0.0);
    // The side-by-side heatmap renders the same comparison.
    let view = render_side_by_side(&ic_util, &pic_util, 40);
    assert!(view.contains("bisection saturated: IC"));
    assert!(view.contains("slots:solve"));
}
