//! Umbrella crate for the PIC reproduction workspace: re-exports the
//! public API of every member crate so the examples and integration tests
//! have one import root.

pub use pic_apps as apps;
pub use pic_core as core;
pub use pic_dfs as dfs;
pub use pic_mapreduce as mapreduce;
pub use pic_simnet as simnet;
