//! Quickstart: cluster 50k points with K-means, conventionally (IC) and
//! with Partitioned Iterative Convergence (PIC), on the paper's 6-node
//! research-cluster model, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pic_apps::kmeans::{gaussian_mixture, init_random_centroids, Centroids, KMeansApp};
use pic_core::prelude::*;
use pic_mapreduce::{Dataset, Engine, Timing};
use pic_simnet::ClusterSpec;

fn main() {
    // 1. A simulated cluster: the paper's small testbed (6 nodes × 8
    //    cores, gigabit Ethernet, 24 map + 24 reduce slots).
    let spec = ClusterSpec::small();
    println!(
        "cluster: {} nodes × {} cores, {} map slots",
        spec.nodes, spec.cores_per_node, spec.map_slots
    );

    // 2. A workload: 50k points from a 100-component Gaussian mixture.
    let n = 200_000;
    let k = 100;
    let points = gaussian_mixture(n, k, 3, 1000.0, 40.0, 42);
    let init = Centroids::new(init_random_centroids(k, 3, 1000.0, 7));
    let app = KMeansApp::new(k, 3, 1.0);
    // Two-rate cost model (DESIGN.md §6): a Hadoop-era framework pass
    // costs ~560 µs/record; the same record inside an in-memory local
    // iteration costs its raw kernel flops (~0.6 µs).
    let timing = Timing::PerRecord {
        map_secs: 5.6e-4,
        reduce_secs: 5e-5,
    };

    // 3. The conventional IC baseline: one MapReduce job per iteration.
    let engine = Engine::new(spec.clone());
    let data = Dataset::create(&engine, "/in/points", points.clone(), 24);
    engine.reset();
    let ic = run_ic(
        &engine,
        &app,
        &data,
        init.clone(),
        &IcOptions {
            timing: timing.clone(),
            ..Default::default()
        },
    );
    println!(
        "\nIC baseline:  {:>8.1} sim-seconds, {} iterations, {} intermediate data",
        ic.total_time_s,
        ic.iterations,
        pic_simnet::traffic::human_bytes(ic.traffic.get(pic_simnet::TrafficClass::MapSpill)),
    );

    // 4. PIC: best-effort phase over 24 random partitions, then top-off.
    let engine = Engine::new(spec);
    let data = Dataset::create(&engine, "/in/points", points, 24);
    engine.reset();
    let pic = run_pic(
        &engine,
        &app,
        &data,
        init,
        &PicOptions {
            partitions: 24,
            timing,
            local_secs_per_record: Some(0.6e-6),
            ..Default::default()
        },
    );
    println!(
        "PIC:          {:>8.1} sim-seconds ({:.1} best-effort + {:.1} top-off)",
        pic.total_time_s, pic.be_time_s, pic.topoff_time_s
    );
    println!(
        "              {} best-effort iterations (max local iterations {:?}), {} top-off iterations",
        pic.be_iterations,
        pic.max_local_iterations(),
        pic.topoff_iterations
    );
    println!(
        "              {} intermediate data",
        pic_simnet::traffic::human_bytes(pic.traffic().get(pic_simnet::TrafficClass::MapSpill)),
    );

    println!("\ntimeline (simulated seconds):");
    print!(
        "{}",
        pic_core::timeline::pic_timeline(&pic, Some(ic.total_time_s))
    );
    println!("(paper reports 2.5x-4x)");
}
