//! Solving a weakly diagonally dominant linear system with Jacobi (IC)
//! vs block-Jacobi PIC — the paper's exact 100-variable experiment, and
//! the case where PIC's convergence to the same unique solution is
//! provable (additive Schwarz, paper §VI.B).
//!
//! ```text
//! cargo run --release --example linear_solver
//! ```

use pic_apps::linsolve::{diag_dominant_system, LinSolveApp};
use pic_core::prelude::*;
use pic_mapreduce::{Dataset, Engine, Timing};
use pic_simnet::ClusterSpec;

fn main() {
    let n = 100; // the paper's size
    let sys = diag_dominant_system(n, 0.05, 77);
    println!("system: {n} unknowns, weakly diagonally dominant (margin 5%)");

    let app = LinSolveApp::new(n, 5, 1e-8).with_exact(sys.exact.clone());
    let timing = Timing::PerRecord {
        map_secs: 5e-4,
        reduce_secs: 5e-5,
    };
    let spec = ClusterSpec::small();

    let engine = Engine::new(spec.clone());
    let data = Dataset::create(&engine, "/ls/rows", sys.rows.clone(), 5);
    engine.reset();
    let ic = run_ic(
        &engine,
        &app,
        &data,
        vec![0.0; n],
        &IcOptions {
            timing: timing.clone(),
            ..Default::default()
        },
    );
    println!(
        "\nJacobi (IC):       {:>7.1} sim-seconds, {} sweeps, error vs exact {:.2e}",
        ic.total_time_s,
        ic.iterations,
        sys.error(&ic.final_model)
    );

    let engine = Engine::new(spec);
    let data = Dataset::create(&engine, "/ls/rows", sys.rows.clone(), 5);
    engine.reset();
    let pic = run_pic(
        &engine,
        &app,
        &data,
        vec![0.0; n],
        &PicOptions {
            partitions: 5,
            timing,
            local_secs_per_record: Some(0.2e-6),
            ..Default::default()
        },
    );
    println!(
        "block-Jacobi (PIC): {:>6.1} sim-seconds, {} best-effort iterations \
         (locals {:?}) + {} top-off sweeps, error vs exact {:.2e}",
        pic.total_time_s,
        pic.be_iterations,
        pic.max_local_iterations(),
        pic.topoff_iterations,
        sys.error(&pic.final_model)
    );

    println!(
        "\nboth converge to the unique golden solution; speedup: {:.2}x",
        ic.total_time_s / pic.total_time_s
    );
}
