//! Image smoothing on a 256×256 noisy image — the paper's large-model
//! workload (the model *is* the image), showing where the model-update
//! traffic goes and how PIC's tile partitioning removes it.
//!
//! ```text
//! cargo run --release --example image_pipeline
//! ```

use pic_apps::smoothing::{noisy_image, SmoothingApp};
use pic_core::prelude::*;
use pic_mapreduce::{ByteSize, Dataset, Engine, Timing};
use pic_simnet::traffic::human_bytes;
use pic_simnet::ClusterSpec;

fn main() {
    let side = 256;
    let strips = 64;
    let f = noisy_image(side, side, 0.08, 5);
    let app = SmoothingApp::new(side, side, strips, 1e-4);
    println!(
        "image: {side}x{side} ({}), smoothed as {strips} horizontal strips",
        human_bytes(f.byte_size())
    );

    let timing = Timing::PerRecord {
        map_secs: 2e-4 + 8e-9 * side as f64,
        reduce_secs: 5e-5,
    };
    let spec = ClusterSpec::medium();

    let engine = Engine::new(spec.clone());
    let data = Dataset::create(&engine, "/img/noisy", f.rows(), 64);
    engine.reset();
    let ic = run_ic(
        &engine,
        &app,
        &data,
        f.clone(),
        &IcOptions {
            timing: timing.clone(),
            ..Default::default()
        },
    );
    println!(
        "\nIC:  {:>8.1} sim-seconds, {} sweeps, model updates moved {}",
        ic.total_time_s,
        ic.iterations,
        human_bytes(ic.traffic.model_update_total())
    );

    let engine = Engine::new(spec);
    let data = Dataset::create(&engine, "/img/noisy", f.rows(), 64);
    engine.reset();
    let pic = run_pic(
        &engine,
        &app,
        &data,
        f.clone(),
        &PicOptions {
            partitions: strips,
            timing,
            local_secs_per_record: Some(8e-9 * side as f64),
            ..Default::default()
        },
    );
    println!(
        "PIC: {:>8.1} sim-seconds ({} best-effort iterations, {} top-off sweeps), \
         model updates moved {}",
        pic.total_time_s,
        pic.be_iterations,
        pic.topoff_iterations,
        human_bytes(pic.traffic().model_update_total())
    );

    // Both must land on the same (unique) smoothed image.
    let diff = ic.final_model.rms_diff(&pic.final_model);
    println!("\nrms difference between IC and PIC results: {diff:.2e} (unique fixed point)");
    println!("speedup: {:.2}x", ic.total_time_s / pic.total_time_s);
}
