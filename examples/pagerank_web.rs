//! PageRank over a synthetic block-local web graph — the paper's
//! Wikipedia experiment in miniature (1.8M documents there, 30k here),
//! including its `18` random partitions and Nutch's fixed 10 iterations.
//!
//! ```text
//! cargo run --release --example pagerank_web
//! ```

use pic_apps::pagerank::{block_local_graph, PageRankApp, PartitionMode};
use pic_core::prelude::*;
use pic_mapreduce::{Dataset, Engine, Timing};
use pic_simnet::ClusterSpec;

fn main() {
    let n = 30_000;
    let partitions = 18; // as in the paper's Wikipedia setup
    let graph = block_local_graph(n, partitions, 2, 8, 0.9, 11);
    println!("web graph: {} pages, {} links", graph.n(), graph.m());

    let app = PageRankApp::new(graph.clone(), partitions, PartitionMode::Random, 3);
    println!(
        "partitioned into {partitions} random sub-graphs; {:.1}% of links cross partitions",
        100.0 * app.cut_fraction()
    );

    // Nutch-style page records are heavy: ~1 ms per page through the
    // framework; ~1 µs per page inside a local iteration.
    let timing = Timing::PerRecord {
        map_secs: 1e-3,
        reduce_secs: 5e-5,
    };
    let spec = ClusterSpec::small();

    // IC baseline: 10 Nutch iterations, two jobs each (aggregate +
    // propagate).
    let engine = Engine::new(spec.clone());
    let data = Dataset::create(&engine, "/web/graph", graph.records(), 24);
    engine.reset();
    let ic = run_ic(
        &engine,
        &app,
        &data,
        app.initial_model(),
        &IcOptions {
            timing: timing.clone(),
            ..Default::default()
        },
    );
    println!(
        "\nIC:  {:>7.1} sim-seconds for {} iterations",
        ic.total_time_s, ic.iterations
    );

    // PIC.
    let engine = Engine::new(spec);
    let data = Dataset::create(&engine, "/web/graph", graph.records(), 24);
    engine.reset();
    let pic = run_pic(
        &engine,
        &app,
        &data,
        app.initial_model(),
        &PicOptions {
            partitions,
            timing,
            local_secs_per_record: Some(1e-6),
            ..Default::default()
        },
    );
    println!(
        "PIC: {:>7.1} sim-seconds ({} best-effort + {} top-off iterations)",
        pic.total_time_s, pic.be_iterations, pic.topoff_iterations
    );

    // Quality: rank the top pages under both models and compare.
    let top = |ranks: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..ranks.len()).collect();
        idx.sort_by(|&a, &b| ranks[b].partial_cmp(&ranks[a]).expect("ranks are finite"));
        idx.truncate(20);
        idx
    };
    let ic_top = top(&ic.final_model.ranks);
    let pic_top = top(&pic.final_model.ranks);
    let overlap = ic_top.iter().filter(|v| pic_top.contains(v)).count();
    println!(
        "\ntop-20 pages overlap between IC and PIC orderings: {overlap}/20 \
         (PageRank is a best-effort ordering — paper §IV.B)"
    );
    println!("speedup: {:.2}x", ic.total_time_s / pic.total_time_s);
}
