//! Neural-network training with PIC — an early instance of what is now
//! called federated averaging: train replicas on disjoint shards, average
//! the weights, repeat, then fine-tune globally (the top-off phase).
//!
//! ```text
//! cargo run --release --example federated_training
//! ```

use pic_apps::neuralnet::{ocr_like_split, Mlp, NeuralNetApp};
use pic_core::prelude::*;
use pic_mapreduce::{Dataset, Engine, Timing};
use pic_simnet::ClusterSpec;

fn main() {
    let n = 10_000;
    let (train, valid) = ocr_like_split(n, n / 10, 10, 64, 0.08, 23);
    println!(
        "training set: {} OCR-like vectors (8x8 pixels, 10 classes), {} validation",
        train.len(),
        valid.len()
    );

    let mut app = NeuralNetApp::new(valid.clone());
    app.max_iterations = 60;
    let init = Mlp::random(64, 32, 10, 1);
    println!(
        "network: 64-32-10 MLP, {} parameters; initial validation error {:.1}%",
        init.params.len(),
        100.0 * init.misclassification_rate(&valid)
    );

    // Backprop through the framework: ~1 ms/sample; in-memory: ~20 µs.
    let timing = Timing::PerRecord {
        map_secs: 1e-3,
        reduce_secs: 1e-4,
    };
    let spec = ClusterSpec::small();

    let engine = Engine::new(spec.clone());
    let data = Dataset::create(&engine, "/nn/train", train.clone(), 24);
    engine.reset();
    let ic = run_ic(
        &engine,
        &app,
        &data,
        init.clone(),
        &IcOptions {
            timing: timing.clone(),
            ..Default::default()
        },
    );
    println!(
        "\ncentralized (IC):        {:>7.1} sim-seconds, {} gradient steps, error {:.1}%",
        ic.total_time_s,
        ic.iterations,
        100.0 * ic.final_model.misclassification_rate(&valid)
    );

    let engine = Engine::new(spec);
    let data = Dataset::create(&engine, "/nn/train", train, 24);
    engine.reset();
    let pic = run_pic(
        &engine,
        &app,
        &data,
        init,
        &PicOptions {
            partitions: 12,
            timing,
            local_secs_per_record: Some(2e-5),
            ..Default::default()
        },
    );
    println!(
        "federated-style (PIC):   {:>7.1} sim-seconds, {} averaging rounds + {} \
         fine-tune steps, error {:.1}%",
        pic.total_time_s,
        pic.be_iterations,
        pic.topoff_iterations,
        100.0 * pic.final_model.misclassification_rate(&valid)
    );
    if let Some(be_err) = pic.be_final_error {
        println!(
            "error after averaging rounds alone (before fine-tune): {:.1}%",
            100.0 * be_err
        );
    }
    println!("\nspeedup: {:.2}x", ic.total_time_s / pic.total_time_s);
}
